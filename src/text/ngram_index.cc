#include "text/ngram_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace ncl::text {

namespace {

/// Enumerates the analyzer's term strings for a token list: the tokens
/// themselves (when configured) and their boundary-padded char n-grams.
template <typename Fn>
void ForEachTerm(const NgramIndexConfig& config,
                 const std::vector<std::string>& tokens, Fn&& fn) {
  for (const auto& token : tokens) {
    if (config.index_tokens) fn(std::string_view(token));
    for (const auto& gram : CharNgramsPadded(token, config.ngram_size)) {
      fn(std::string_view(gram));
    }
  }
}

/// k-th largest accumulator score (the maxscore threshold theta).
double KthLargest(const std::unordered_map<int32_t, double>& accums, size_t k,
                  std::vector<double>* scratch) {
  scratch->clear();
  scratch->reserve(accums.size());
  for (const auto& [doc, score] : accums) scratch->push_back(score);
  auto kth = scratch->begin() + static_cast<ptrdiff_t>(k - 1);
  std::nth_element(scratch->begin(), kth, scratch->end(), std::greater<>());
  return *kth;
}

}  // namespace

NgramIndex::NgramIndex(NgramIndexConfig config) : config_(config) {
  NCL_CHECK(config_.ngram_size > 0) << "ngram_size must be > 0";
}

int32_t NgramIndex::AddDocument(const std::vector<std::string>& tokens) {
  NCL_CHECK(!finalized_) << "cannot add documents after Finalize()";
  int32_t doc_id = static_cast<int32_t>(doc_norms_.size());
  doc_norms_.push_back(0.0);  // filled in Finalize
  for (const auto& [term_id, tf] : AnalyzeDoc(tokens)) {
    postings_[static_cast<size_t>(term_id)].push_back(
        Posting{doc_id, static_cast<float>(tf)});
    ++num_postings_;
  }
  return doc_id;
}

std::vector<std::pair<int32_t, uint32_t>> NgramIndex::AnalyzeDoc(
    const std::vector<std::string>& tokens) {
  std::unordered_map<int32_t, uint32_t> tf;
  ForEachTerm(config_, tokens, [&](std::string_view term) {
    int32_t id = terms_.Add(term);
    if (static_cast<size_t>(id) >= postings_.size()) {
      postings_.resize(static_cast<size_t>(id) + 1);
    }
    ++tf[id];
  });
  return {tf.begin(), tf.end()};
}

void NgramIndex::Finalize() {
  NCL_CHECK(!finalized_) << "Finalize() called twice";
  const double num_docs = static_cast<double>(doc_norms_.size());
  idf_.assign(postings_.size(), 0.0);
  upper_bounds_.assign(postings_.size(), 0.0f);

  // Pass 1: idf (smoothed, always positive) and document norms over raw
  // tf*idf weights. Postings still hold raw tf at this point.
  for (size_t t = 0; t < postings_.size(); ++t) {
    idf_[t] = std::log((num_docs + 1.0) /
                       (static_cast<double>(postings_[t].size()) + 1.0)) +
              1.0;
    for (const Posting& p : postings_[t]) {
      const double weight = static_cast<double>(p.impact) * idf_[t];
      doc_norms_[static_cast<size_t>(p.doc_id)] += weight * weight;
    }
  }
  for (double& norm : doc_norms_) norm = std::sqrt(norm);

  // Pass 2: convert tf -> impact (the normalised cosine contribution),
  // impact-order each list and record its upper bound.
  for (size_t t = 0; t < postings_.size(); ++t) {
    auto& plist = postings_[t];
    for (Posting& p : plist) {
      const double norm = doc_norms_[static_cast<size_t>(p.doc_id)];
      p.impact = norm > 0.0
                     ? static_cast<float>(static_cast<double>(p.impact) *
                                          idf_[t] / norm)
                     : 0.0f;
    }
    std::sort(plist.begin(), plist.end(), [](const Posting& a, const Posting& b) {
      if (a.impact != b.impact) return a.impact > b.impact;
      return a.doc_id < b.doc_id;
    });
    if (!plist.empty()) upper_bounds_[t] = plist.front().impact;
  }

  // Forward index for exact rescoring (only needed when pruning can
  // truncate accumulation). Term ids ascend in the outer loop, so each
  // document's pairs come out sorted by term id for the merge-join.
  if (config_.max_accumulators > 0 || config_.per_term_posting_budget > 0 ||
      config_.early_stop_epsilon > 0.0) {
    std::vector<size_t> counts(doc_norms_.size(), 0);
    for (const auto& plist : postings_) {
      for (const Posting& p : plist) ++counts[static_cast<size_t>(p.doc_id)];
    }
    doc_terms_.resize(doc_norms_.size());
    for (size_t d = 0; d < counts.size(); ++d) doc_terms_[d].reserve(counts[d]);
    for (size_t t = 0; t < postings_.size(); ++t) {
      for (const Posting& p : postings_[t]) {
        doc_terms_[static_cast<size_t>(p.doc_id)].emplace_back(
            static_cast<int32_t>(t), p.impact);
      }
    }
  }
  finalized_ = true;
}

std::vector<NgramIndex::QueryTerm> NgramIndex::AnalyzeQuery(
    const std::vector<std::string>& query) const {
  std::unordered_map<int32_t, uint32_t> tf;
  ForEachTerm(config_, query, [&](std::string_view term) {
    int32_t id = terms_.Lookup(term);
    if (id != Vocabulary::kUnknown) ++tf[id];
  });

  std::vector<QueryTerm> terms;
  terms.reserve(tf.size());
  double norm = 0.0;
  for (const auto& [id, count] : tf) {
    const double weight = static_cast<double>(count) * idf_[static_cast<size_t>(id)];
    terms.push_back(QueryTerm{id, weight, 0.0});
    norm += weight * weight;
  }
  if (terms.empty() || norm == 0.0) return {};
  norm = std::sqrt(norm);
  for (QueryTerm& qt : terms) {
    qt.weight /= norm;
    qt.salience =
        qt.weight * static_cast<double>(upper_bounds_[static_cast<size_t>(qt.term_id)]);
  }
  // Salience-descending processing order: the most discriminative terms
  // admit candidates first, so top-m pruning keeps the right documents and
  // the maxscore test can retire the long common-gram tail.
  std::sort(terms.begin(), terms.end(), [](const QueryTerm& a, const QueryTerm& b) {
    if (a.salience != b.salience) return a.salience > b.salience;
    return a.term_id < b.term_id;
  });
  return terms;
}

std::vector<ScoredDoc> NgramIndex::RunTopK(const std::vector<std::string>& query,
                                           size_t k, bool pruned) const {
  NCL_CHECK(finalized_) << "TopK() requires Finalize()";
  if (k == 0 || query.empty()) return {};
  const std::vector<QueryTerm> terms = AnalyzeQuery(query);
  if (terms.empty()) return {};

  const size_t max_accums = pruned ? config_.max_accumulators : 0;
  const size_t budget = pruned ? config_.per_term_posting_budget : 0;
  const double epsilon = pruned ? config_.early_stop_epsilon : 0.0;

  // suffix_ub[i]: the most any document could still gain from terms i..end.
  std::vector<double> suffix_ub(terms.size() + 1, 0.0);
  for (size_t i = terms.size(); i-- > 0;) {
    suffix_ub[i] = suffix_ub[i + 1] + terms[i].salience;
  }

  std::unordered_map<int32_t, double> accums;
  accums.reserve(max_accums > 0 ? max_accums : 1024);
  std::vector<double> theta_scratch;
  double theta = 0.0;
  bool have_theta = false;

  for (size_t i = 0; i < terms.size(); ++i) {
    // Maxscore termination: everything the remaining (lowest-salience)
    // terms can add is below epsilon of the k-th best score — further
    // postings cannot meaningfully reorder the top-k.
    if (epsilon > 0.0 && have_theta && suffix_ub[i] < epsilon * theta) break;
    const QueryTerm& qt = terms[i];
    const auto& plist = postings_[static_cast<size_t>(qt.term_id)];
    const size_t limit =
        (budget > 0 && budget < plist.size()) ? budget : plist.size();
    for (size_t p = 0; p < limit; ++p) {
      const Posting& post = plist[p];
      const double delta = qt.weight * static_cast<double>(post.impact);
      auto it = accums.find(post.doc_id);
      if (it != accums.end()) {
        it->second += delta;
      } else if (max_accums == 0 || accums.size() < max_accums) {
        // Maxscore admission: a document first seen at term i can
        // *accumulate* at most delta + suffix_ub[i+1] more. Once a
        // threshold is known, documents that cannot reach it are not
        // admitted (theta only ever underestimates the k-th best final
        // accumulation, and >= keeps potential exact ties), reserving the
        // accumulator table for documents that can still make the top-k.
        if (!have_theta || delta + suffix_ub[i + 1] >= theta) {
          accums.emplace(post.doc_id, delta);
        }
      }
    }
    if (epsilon > 0.0 && accums.size() >= k) {
      theta = KthLargest(accums, k, &theta_scratch);
      have_theta = true;
    }
  }

  // Stage two: exact rescoring of the admitted set. Budget-truncated and
  // epsilon-abandoned lists leave accumulated scores short; a merge-join of
  // each admitted document's forward-index terms against the query restores
  // the full cosine, so admission knobs never mis-rank a kept candidate.
  // The zero-knob configuration accumulates completely and skips this (it
  // also has no forward index), keeping it bit-identical to the exhaustive
  // reference.
  const bool rescore =
      pruned && !doc_terms_.empty() &&
      (max_accums > 0 || budget > 0 || epsilon > 0.0);
  if (rescore) {
    std::vector<std::pair<int32_t, double>> query_weights;
    query_weights.reserve(terms.size());
    for (const QueryTerm& qt : terms) {
      query_weights.emplace_back(qt.term_id, qt.weight);
    }
    std::sort(query_weights.begin(), query_weights.end());
    for (auto& [doc_id, score] : accums) {
      const auto& doc = doc_terms_[static_cast<size_t>(doc_id)];
      double exact = 0.0;
      size_t qi = 0;
      for (const auto& [term_id, impact] : doc) {
        while (qi < query_weights.size() && query_weights[qi].first < term_id) {
          ++qi;
        }
        if (qi == query_weights.size()) break;
        if (query_weights[qi].first == term_id) {
          exact += query_weights[qi].second * static_cast<double>(impact);
        }
      }
      score = exact;
    }
  }

  // Bounded min-heap selection under (score desc, doc_id asc) — identical
  // tie-break to TfIdfIndex::TopK, deterministic regardless of the
  // accumulator map's iteration order.
  const auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(k + 1);
  for (const auto& [doc_id, score] : accums) {
    if (score <= 0.0) continue;
    ScoredDoc scored{doc_id, score};
    if (heap.size() < k) {
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(scored, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = scored;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

std::vector<ScoredDoc> NgramIndex::TopK(const std::vector<std::string>& query,
                                        size_t k) const {
  return RunTopK(query, k, /*pruned=*/true);
}

std::vector<ScoredDoc> NgramIndex::TopKExhaustive(
    const std::vector<std::string>& query, size_t k) const {
  return RunTopK(query, k, /*pruned=*/false);
}

}  // namespace ncl::text
