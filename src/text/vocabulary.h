// Word vocabulary: bidirectional word <-> id mapping with frequencies.
//
// Used by the embedding pre-training (Ω' in §5: words from both concept
// descriptions and unlabeled snippets), by COM-AID's softmax output layer,
// and by the online query rewriter.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ncl::text {

/// Id type for vocabulary entries.
using WordId = int32_t;

/// Transparent string hash so string-keyed maps can be probed with a
/// string_view (or char*) without materialising a std::string per lookup —
/// the tokenize -> Lookup path is hot enough for that allocation to show.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief Growable word <-> id map with occurrence counts.
///
/// Ids are dense and assigned in insertion order. Reserved entries (such as
/// BOS/EOS/UNK markers) are added by the owner; the class itself imposes no
/// special tokens.
class Vocabulary {
 public:
  static constexpr WordId kUnknown = -1;

  /// Insert `word` if absent; returns its id and bumps its count by `count`.
  WordId Add(std::string_view word, uint64_t count = 1);

  /// Id of `word`, or kUnknown.
  WordId Lookup(std::string_view word) const;

  /// True if `word` has been added.
  bool Contains(std::string_view word) const { return Lookup(word) != kUnknown; }

  /// The word for an id. Requires a valid id.
  const std::string& WordOf(WordId id) const;

  /// Occurrence count of an id. Requires a valid id.
  uint64_t CountOf(WordId id) const;

  size_t size() const { return words_.size(); }

  /// Total number of occurrences across all words.
  uint64_t total_count() const { return total_count_; }

  /// All words in id order.
  const std::vector<std::string>& words() const { return words_; }

  /// Occurrence counts in id order.
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Keep only words with count >= min_count, reassigning dense ids.
  /// Returns old-id -> new-id (kUnknown for dropped words).
  std::vector<WordId> PruneRareWords(uint64_t min_count);

 private:
  std::unordered_map<std::string, WordId, StringHash, std::equal_to<>> index_;
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace ncl::text
