#include "text/tfidf_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace ncl::text {

int32_t TfIdfIndex::AddDocument(const std::vector<std::string>& tokens) {
  NCL_CHECK(!finalized_) << "cannot add documents after Finalize()";
  int32_t doc_id = static_cast<int32_t>(doc_lengths_.size());
  doc_lengths_.push_back(static_cast<uint32_t>(tokens.size()));

  std::unordered_map<WordId, uint32_t> tf;
  for (const auto& token : tokens) {
    WordId id = vocab_.Add(token);
    if (static_cast<size_t>(id) >= postings_.size()) {
      postings_.resize(static_cast<size_t>(id) + 1);
    }
    ++tf[id];
  }
  for (const auto& [word_id, count] : tf) {
    postings_[static_cast<size_t>(word_id)].push_back(
        Posting{doc_id, static_cast<float>(count)});
  }
  return doc_id;
}

void TfIdfIndex::Finalize() {
  NCL_CHECK(!finalized_) << "Finalize() called twice";
  const double num_docs = static_cast<double>(doc_lengths_.size());
  idf_.assign(postings_.size(), 0.0);
  doc_norms_.assign(doc_lengths_.size(), 0.0);
  for (size_t w = 0; w < postings_.size(); ++w) {
    auto& plist = postings_[w];
    std::sort(plist.begin(), plist.end(),
              [](const Posting& a, const Posting& b) { return a.doc_id < b.doc_id; });
    // Smoothed idf: log((N + 1) / (df + 1)) + 1 keeps weights positive even
    // for terms present in every document.
    idf_[w] = std::log((num_docs + 1.0) / (static_cast<double>(plist.size()) + 1.0)) +
              1.0;
    for (const Posting& p : plist) {
      double weight = p.tf * idf_[w];
      doc_norms_[static_cast<size_t>(p.doc_id)] += weight * weight;
    }
  }
  for (double& norm : doc_norms_) norm = std::sqrt(norm);
  finalized_ = true;
}

std::vector<ScoredDoc> TfIdfIndex::TopK(const std::vector<std::string>& query,
                                        size_t k) const {
  NCL_CHECK(finalized_) << "TopK() requires Finalize()";
  if (k == 0 || query.empty()) return {};

  // Query-side TF-IDF weights.
  std::unordered_map<WordId, double> query_weights;
  for (const auto& token : query) {
    WordId id = vocab_.Lookup(token);
    if (id != Vocabulary::kUnknown) query_weights[id] += 1.0;
  }
  double query_norm = 0.0;
  for (auto& [word_id, weight] : query_weights) {
    weight *= idf_[static_cast<size_t>(word_id)];
    query_norm += weight * weight;
  }
  if (query_weights.empty() || query_norm == 0.0) return {};
  query_norm = std::sqrt(query_norm);

  // Accumulate dot products by walking the postings of the query terms only.
  std::unordered_map<int32_t, double> scores;
  for (const auto& [word_id, q_weight] : query_weights) {
    double idf = idf_[static_cast<size_t>(word_id)];
    for (const Posting& p : postings_[static_cast<size_t>(word_id)]) {
      scores[p.doc_id] += q_weight * (p.tf * idf);
    }
  }

  // Bounded min-heap of the k best under (score desc, doc_id asc) — the top
  // of the heap is the worst kept entry, evicted when a better one arrives.
  // Selecting k under a strict total order makes the result independent of
  // the unordered_map iteration order.
  const auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  std::vector<ScoredDoc> heap;
  heap.reserve(k + 1);
  for (const auto& [doc_id, dot] : scores) {
    double denom = doc_norms_[static_cast<size_t>(doc_id)] * query_norm;
    if (denom <= 0.0) continue;
    ScoredDoc scored{doc_id, dot / denom};
    if (heap.size() < k) {
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(scored, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = scored;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

}  // namespace ncl::text
