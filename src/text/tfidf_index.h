// TF-IDF weighted inverted index with cosine ranking.
//
// Implements Phase I of the paper's online concept linking (§5): "we compute
// the cosine similarity between each concept and query q with the TF-IDF
// weighting scheme, and then return the top-k concepts with the largest
// similarity as the candidates." Documents are the canonical concept
// descriptions (and optionally their aliases); scoring walks only the
// postings of the query's terms.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace ncl::text {

/// One ranked retrieval result.
struct ScoredDoc {
  int32_t doc_id = -1;
  double score = 0.0;
};

/// \brief Inverted index over tokenised documents, scored by TF-IDF cosine.
class TfIdfIndex {
 public:
  /// Add one document; returns its id (dense, insertion order).
  int32_t AddDocument(const std::vector<std::string>& tokens);

  /// Freeze the collection: compute idf values and document norms.
  /// Must be called after the last AddDocument and before TopK.
  void Finalize();

  /// Top-k documents by cosine(query, doc) under TF-IDF weights, sorted by
  /// descending score (ties broken by ascending doc id). Query words absent
  /// from the collection vocabulary are ignored.
  std::vector<ScoredDoc> TopK(const std::vector<std::string>& query,
                              size_t k) const;

  /// The collection vocabulary (words seen in any indexed document); this is
  /// the Ω of §5's query rewriting step.
  const Vocabulary& vocabulary() const { return vocab_; }

  size_t num_documents() const { return doc_lengths_.size(); }
  bool finalized() const { return finalized_; }

 private:
  struct Posting {
    int32_t doc_id;
    float tf;  // raw term frequency within the document
  };

  Vocabulary vocab_;
  std::vector<std::vector<Posting>> postings_;  // by word id
  std::vector<double> idf_;                     // by word id
  std::vector<double> doc_norms_;               // by doc id
  std::vector<uint32_t> doc_lengths_;           // by doc id
  bool finalized_ = false;
};

}  // namespace ncl::text
