// Text normalisation and tokenisation.
//
// Mirrors the paper's preprocessing (§6.1 footnote 9): all words are
// lowercased, special characters (',', ';', ...) are removed, and duplicate
// snippets can be eliminated by the caller using the normalised form.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ncl::text {

/// \brief Lowercase and strip special characters, collapsing whitespace.
///
/// Characters other than [a-z0-9], '.', '%' and '\'' are treated as word
/// separators; '.' is kept inside tokens so that ICD-style identifiers
/// ("D50.0") and decimals survive, and '%' survives for snippets like
/// "ef 75%".
std::string Normalize(std::string_view raw);

/// \brief Normalize then split into tokens.
std::vector<std::string> Tokenize(std::string_view raw);

/// \brief Join tokens back into a snippet string.
std::string Detokenize(const std::vector<std::string>& tokens);

/// \brief Character n-grams of a token (used by LR+ bigram features and by
/// the fuzzy matching fallback). Returns the whole token if it is shorter
/// than n.
std::vector<std::string> CharNgrams(std::string_view token, size_t n);

/// \brief Character n-grams of a token padded with `kBoundaryChar` on both
/// sides ("dm" -> "#dm", "dm#" for n = 3), the scispacy-style analyzer used
/// by the candidate-generation inverted index. Boundary padding makes word
/// starts/ends discriminative and guarantees at least one gram for tokens
/// shorter than n (a bare boundary-wrapped token for the shortest inputs).
/// `kBoundaryChar` cannot occur inside Tokenize() output, so padded grams
/// never collide with whole tokens in a shared term space. Returns {} only
/// for an empty token or n == 0.
std::vector<std::string> CharNgramsPadded(std::string_view token, size_t n);

/// Boundary marker used by CharNgramsPadded.
inline constexpr char kBoundaryChar = '#';

}  // namespace ncl::text
