#include "text/vocabulary.h"

#include "util/logging.h"

namespace ncl::text {

WordId Vocabulary::Add(std::string_view word, uint64_t count) {
  auto it = index_.find(word);
  if (it != index_.end()) {
    counts_[it->second] += count;
    total_count_ += count;
    return it->second;
  }
  WordId id = static_cast<WordId>(words_.size());
  words_.emplace_back(word);
  counts_.push_back(count);
  total_count_ += count;
  index_.emplace(words_.back(), id);
  return id;
}

WordId Vocabulary::Lookup(std::string_view word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnknown : it->second;
}

const std::string& Vocabulary::WordOf(WordId id) const {
  NCL_DCHECK(id >= 0 && static_cast<size_t>(id) < words_.size());
  return words_[static_cast<size_t>(id)];
}

uint64_t Vocabulary::CountOf(WordId id) const {
  NCL_DCHECK(id >= 0 && static_cast<size_t>(id) < counts_.size());
  return counts_[static_cast<size_t>(id)];
}

std::vector<WordId> Vocabulary::PruneRareWords(uint64_t min_count) {
  std::vector<WordId> remap(words_.size(), kUnknown);
  std::vector<std::string> kept_words;
  std::vector<uint64_t> kept_counts;
  uint64_t kept_total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    if (counts_[i] >= min_count) {
      remap[i] = static_cast<WordId>(kept_words.size());
      kept_words.push_back(std::move(words_[i]));
      kept_counts.push_back(counts_[i]);
      kept_total += counts_[i];
    }
  }
  words_ = std::move(kept_words);
  counts_ = std::move(kept_counts);
  total_count_ = kept_total;
  index_.clear();
  for (size_t i = 0; i < words_.size(); ++i) {
    index_.emplace(words_[i], static_cast<WordId>(i));
  }
  return remap;
}

}  // namespace ncl::text
