// Char-ngram TF-IDF inverted index with top-m pruned retrieval.
//
// The exhaustive TfIdfIndex accumulates a score for every document that
// shares a term with the query and then ranks them all — fine at thousands
// of synthetic concepts, a corpus scan at the paper's 93,830 ICD-10 codes.
// NgramIndex is the sub-linear replacement (ROADMAP "paper-scale
// ontologies"): a scispacy-style analyzer (token unigrams + boundary-padded
// character 3-grams, see CharNgramsPadded) feeding an impact-ordered
// inverted index scored with maxscore/WAND-flavoured early termination.
//
// Index layout (built in Finalize):
//   * one posting list per term, sorted by descending *impact* — the term's
//     normalised contribution tf*idf / ||d|| to the cosine score — with
//     doc_id as tie-break;
//   * a per-term upper bound ub(t) = first (largest) impact in the list.
//
// Retrieval is two-stage. Stage one *admits* candidates: a term-at-a-time
// walk in descending salience q(t)*ub(t) (query weight times upper bound),
// with three pruning knobs:
//   * max_accumulators (top-m pruning): once m candidate documents have
//     been admitted, no new documents are created — later postings only
//     update documents that already look promising;
//   * per_term_posting_budget: at most B postings of any list are walked.
//     Lists are impact-ordered, so the walked prefix is exactly the B
//     highest-contribution documents of that term;
//   * early_stop_epsilon: terms are abandoned wholesale once the summed
//     upper bounds of every remaining term fall below epsilon times the
//     current k-th best accumulated score — the maxscore termination test.
// Stage two *rescores* every admitted document exactly against a forward
// index (document -> term impacts), so truncated posting walks never
// under-count a candidate's score — pruning can only cost recall by failing
// to admit the right document, not by mis-ranking an admitted one. This is
// what lets the admission knobs stay aggressive at paper scale.
//
// With all three knobs zeroed retrieval is exhaustive over the same
// analyzer — stage one admits every matching document with its full
// accumulated score and stage two is skipped, making TopK bit-identical to
// TopKExhaustive (the always-exhaustive reference used by the parity
// tests). The pruned result is approximate only in which documents get
// admitted — the recall@k-vs-latency tradeoff bench_candgen sweeps.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/tfidf_index.h"
#include "text/vocabulary.h"

namespace ncl::text {

/// Analyzer and pruning knobs. Zeroing the three pruning knobs makes
/// TopK exhaustive (identical candidate sets to TopKExhaustive).
struct NgramIndexConfig {
  /// Character n-gram width (boundary-padded; see CharNgramsPadded).
  size_t ngram_size = 3;
  /// Index whole tokens as terms alongside the grams. Tokens are rarer than
  /// grams, so they carry the highest idf and drive the salience order.
  bool index_tokens = true;
  /// Top-m pruning: maximum candidate documents admitted per query
  /// (0 = unbounded). Admission is additionally maxscore-gated: once a
  /// threshold score is known, documents whose accumulation cannot reach it
  /// are not admitted, so the table holds viable candidates rather than the
  /// first m documents encountered.
  size_t max_accumulators = 1536;
  /// Maximum postings walked per query term during admission
  /// (0 = unbounded). Impact ordering makes the walked prefix the term's
  /// best documents; exact rescoring means truncation only limits who gets
  /// admitted, never an admitted document's score.
  size_t per_term_posting_budget = 512;
  /// Stop the admission walk once the remaining terms' summed upper bounds
  /// drop below epsilon * (current k-th best score) (0 = never stop early).
  /// Admitted documents are exactly rescored afterwards, so this only
  /// abandons tail-term *admissions*, which is why it can sit well above
  /// the usual rank-safe setting.
  double early_stop_epsilon = 0.4;
};

/// \brief Inverted index over token + padded char-ngram terms, TF-IDF
/// cosine scored, with optional top-m pruned retrieval.
class NgramIndex {
 public:
  explicit NgramIndex(NgramIndexConfig config = {});

  /// Add one document; returns its id (dense, insertion order).
  int32_t AddDocument(const std::vector<std::string>& tokens);

  /// Freeze the collection: compute idf, normalise impacts, impact-order
  /// the postings, record per-term upper bounds, and (when any pruning knob
  /// is active) build the forward index used for exact rescoring.
  void Finalize();

  /// Top-k documents by (approximate) cosine under the pruning knobs,
  /// sorted by descending score with ascending doc id as tie-break.
  std::vector<ScoredDoc> TopK(const std::vector<std::string>& query,
                              size_t k) const;

  /// The exhaustive reference: same analyzer and weights, every posting of
  /// every query term walked, full ranking. Pinned against TopK by the
  /// parity tests; the bench reports the latency gap.
  std::vector<ScoredDoc> TopKExhaustive(const std::vector<std::string>& query,
                                        size_t k) const;

  const NgramIndexConfig& config() const { return config_; }
  size_t num_documents() const { return doc_norms_.size(); }
  /// Distinct terms (tokens + grams) across the collection.
  size_t num_terms() const { return postings_.size(); }
  /// Total posting entries across all lists.
  size_t num_postings() const { return num_postings_; }
  bool finalized() const { return finalized_; }

 private:
  /// One posting: a document and the term's normalised score contribution.
  struct Posting {
    int32_t doc_id;
    float impact;  // tf * idf / ||d||, i.e. the cosine contribution
  };

  /// One analyzed query term with its normalised query-side weight.
  struct QueryTerm {
    int32_t term_id;
    double weight;    // query tf * idf, L2-normalised over the query
    double salience;  // weight * ub(term): max possible score contribution
  };

  /// Map `tokens` to (term id, tf) pairs, creating new terms (index side).
  std::vector<std::pair<int32_t, uint32_t>> AnalyzeDoc(
      const std::vector<std::string>& tokens);

  /// Query-side analysis: idf-weighted, L2-normalised, salience-sorted.
  std::vector<QueryTerm> AnalyzeQuery(const std::vector<std::string>& query) const;

  std::vector<ScoredDoc> RunTopK(const std::vector<std::string>& query, size_t k,
                                 bool pruned) const;

  NgramIndexConfig config_;
  Vocabulary terms_;  // shared token + gram term space ('#'-padded grams
                      // cannot collide with tokens)
  std::vector<std::vector<Posting>> postings_;  // by term id, impact desc
  std::vector<float> upper_bounds_;             // by term id: postings_[t][0]
  std::vector<double> idf_;                     // by term id
  std::vector<double> doc_norms_;               // by doc id (pre-normalisation)
  /// Forward index for exact rescoring: per document, its (term id, impact)
  /// pairs in ascending term id (merge-joined against the sorted query).
  /// Only built when a pruning knob is active — the zero-knob configuration
  /// never truncates accumulation and needs no second pass.
  std::vector<std::vector<std::pair<int32_t, float>>> doc_terms_;
  size_t num_postings_ = 0;
  bool finalized_ = false;
};

}  // namespace ncl::text
