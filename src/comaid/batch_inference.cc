// Batched tape-free Phase-II scoring (see model.h::ScoreLogProbFastBatch).
//
// ScoreLogProbFast runs k candidates as k independent decoder loops, each a
// chain of mat-vecs over the same weight matrices — the logits projection
// alone streams the V x d softmax weight k times per decode step. This file
// runs up to max_lanes candidates in lock-step: per step, the per-lane
// states stack into (active x d) activation matrices and every weight is
// applied once via the blocked GemmNT kernels (nn/gemm.h).
//
// Ragged candidate lengths: lanes are sorted by target length (descending,
// stable), so "lane finished" masking is just the active row prefix
// shrinking — no wasted flops on padded rows, no masking arithmetic in the
// kernels. Per-lane work that cannot batch (attention over the lane's own
// encoder states, cross-entropy on its own logits row) reuses the exact
// single-lane routines, and the GEMM per-element reduction order matches
// MatVecInto, so a lane's score is bit-stable under any batch composition
// (pinned by tests/comaid/batch_inference_test.cc).

#include <algorithm>
#include <numeric>
#include <vector>

#include "comaid/model.h"
#include "nn/gemm.h"
#include "nn/vecmath.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ncl::comaid {

namespace {

using internal::AttentionInto;
using internal::CrossEntropyValue;

struct BatchScoreMetrics {
  obs::Counter* calls;
  obs::Histogram* lanes;
};

const BatchScoreMetrics& GetBatchScoreMetrics() {
  static const BatchScoreMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return BatchScoreMetrics{registry.GetCounter("ncl.ed_batch.calls"),
                             registry.GetHistogram("ncl.ed_batch.lanes")};
  }();
  return metrics;
}

}  // namespace

void ComAidModel::ScoreBatchTile(BatchScoreLane* lanes, size_t num_lanes,
                                 BatchInferenceContext* ctx) const {
  const size_t d = config_.dim;
  const size_t vocab = vocab_.size();
  const size_t comp_width = w_d_->value.cols();
  const bool use_text = config_.text_attention;

  // Resolve encodings and peel off lanes whose composite width would not
  // match W_d (a concept with no ancestors under structural attention) to
  // the single-lane path — same arithmetic, no lock-step partner needed.
  std::vector<const ConceptEncoding*> encs(num_lanes);
  std::vector<bool> use_structure(num_lanes);
  std::vector<size_t> batched;
  batched.reserve(num_lanes);
  size_t attn_rows = 1;
  for (size_t i = 0; i < num_lanes; ++i) {
    NCL_CHECK(lanes[i].target != nullptr) << "batch lane without a target";
    NCL_CHECK(lanes[i].concept_id > 0 &&
              static_cast<size_t>(lanes[i].concept_id) < concept_words_.size())
        << "invalid concept id " << lanes[i].concept_id;
    encs[i] = &EncodingFor(lanes[i].concept_id);
    use_structure[i] =
        config_.structural_attention && encs[i]->ancestors.rows() > 0;
    const size_t lane_width =
        (1 + (use_text ? 1 : 0) + (use_structure[i] ? 1 : 0)) * d;
    if (lane_width != comp_width) {
      lanes[i].log_prob = ScoreLogProbFast(lanes[i].concept_id, *lanes[i].target);
      continue;
    }
    attn_rows = std::max(
        attn_rows, std::max(encs[i]->encoder_states.rows(),
                            encs[i]->ancestors.rows()));
    batched.push_back(i);
  }
  const size_t m = batched.size();
  if (m == 0) return;

  // Longest-first lane order: ragged lengths become a shrinking active row
  // prefix. Stable on the original index so the order (and therefore the
  // whole computation) is deterministic.
  std::sort(batched.begin(), batched.end(), [&](size_t a, size_t b) {
    const size_t sa = lanes[a].target->size();
    const size_t sb = lanes[b].target->size();
    if (sa != sb) return sa > sb;
    return a < b;
  });

  ctx->Prepare(m, d, vocab, comp_width / d, attn_rows);

  float* h = ctx->h();                // m x d decoder hidden states
  float* cell = ctx->c();             // m x d decoder cell states
  float* x = ctx->x();                // m x d previous-word embeddings
  float* composite = ctx->composite();  // m x comp_width
  float* s_tilde = ctx->s_tilde();    // m x d
  float* logits = ctx->logits();      // m x vocab

  std::vector<float> loss(m, 0.0f);
  std::vector<text::WordId> prev_word(m, bos_id_);
  // Decoder initial state per lane: s_0 = h_n^c, cell = 0 (§4.1.2).
  for (size_t r = 0; r < m; ++r) {
    const float* h0 = encs[batched[r]]->final_state();
    std::copy(h0, h0 + d, h + r * d);
    std::fill(cell + r * d, cell + (r + 1) * d, 0.0f);
  }

  const float* b_d = b_d_->value.data();
  const float* b_s = b_s_->value.data();
  const size_t max_steps = lanes[batched[0]].target->size() + 1;
  size_t active = m;
  for (size_t t = 0; t < max_steps; ++t) {
    // Lanes decode target.size() + 1 factors (words then <eos>); sorted
    // longest-first, finished lanes always form a suffix.
    while (active > 0 && lanes[batched[active - 1]].target->size() + 1 <= t) {
      --active;
    }
    if (active == 0) break;

    // Gather previous-word embeddings, then one lock-step LSTM move.
    for (size_t r = 0; r < active; ++r) {
      const float* row = EmbeddingRow(prev_word[r]);
      std::copy(row, row + d, x + r * d);
    }
    decoder_->StepValueBatch(active, x, h, cell, h, cell, ctx->lstm_scratch());

    // Composite rows: [s_t ; tc_t ; sc_t] (Eq. 8). Attention stays per lane
    // — each lane attends over its own concept's encoder states.
    for (size_t r = 0; r < active; ++r) {
      const ConceptEncoding& enc = *encs[batched[r]];
      const float* h_row = h + r * d;
      float* comp_row = composite + r * comp_width;
      std::copy(h_row, h_row + d, comp_row);
      size_t offset = d;
      if (use_text) {
        AttentionInto(enc.encoder_states, h_row, ctx->attn_scores(),
                      comp_row + offset);
        offset += d;
      }
      if (use_structure[batched[r]]) {
        AttentionInto(enc.ancestors, h_row, ctx->attn_scores(),
                      comp_row + offset);
      }
    }

    // s~ = tanh(W_d [s; tc; sc] + b_d): one GemmNT instead of `active`
    // mat-vecs against W_d.
    nn::GemmNT(active, d, comp_width, composite, comp_width,
               w_d_->value.data(), comp_width, s_tilde, d);
    for (size_t r = 0; r < active; ++r) {
      float* row = s_tilde + r * d;
      for (size_t j = 0; j < d; ++j) row[j] += b_d[j];
    }
    nn::TanhInplace(s_tilde, active * d);

    // logits = W_s s~ + b_s (Eq. 9) — the dominant GEMM: the V x d softmax
    // weight streams once per step for the whole batch.
    nn::GemmNT(active, vocab, d, s_tilde, d, w_s_->value.data(), d, logits,
               vocab);
    for (size_t r = 0; r < active; ++r) {
      float* row = logits + r * vocab;
      for (size_t j = 0; j < vocab; ++j) row[j] += b_s[j];
      const auto& target = *lanes[batched[r]].target;
      const text::WordId gold = t < target.size() ? target[t] : eos_id_;
      loss[r] += static_cast<float>(
          CrossEntropyValue(row, vocab, static_cast<int32_t>(gold)));
      prev_word[r] = gold;
    }
  }

  for (size_t r = 0; r < m; ++r) {
    lanes[batched[r]].log_prob = -static_cast<double>(loss[r]);
  }
}

void ComAidModel::ScoreLogProbFastBatch(BatchScoreLane* lanes, size_t num_lanes,
                                        BatchInferenceContext* ctx,
                                        size_t max_lanes) const {
  if (num_lanes == 0) return;
  NCL_CHECK(max_lanes > 0) << "max_lanes must be positive";
  NCL_TRACE_SPAN("ncl.ed_batch.score");
  thread_local BatchInferenceContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  const BatchScoreMetrics& metrics = GetBatchScoreMetrics();
  metrics.calls->Increment();
  metrics.lanes->Record(num_lanes);
  for (size_t start = 0; start < num_lanes; start += max_lanes) {
    ScoreBatchTile(lanes + start, std::min(max_lanes, num_lanes - start), ctx);
  }
}

}  // namespace ncl::comaid
