#include "comaid/generator.h"

#include <algorithm>

#include "util/logging.h"

namespace ncl::comaid {

namespace {
struct Hypothesis {
  std::vector<text::WordId> words;
  double log_prob = 0.0;
};
}  // namespace

std::vector<GeneratedSnippet> GenerateSnippets(const ComAidModel& model,
                                               ontology::ConceptId concept_id,
                                               const GenerateConfig& config) {
  NCL_CHECK(config.beam_width > 0);
  std::vector<Hypothesis> beam{Hypothesis{}};
  std::vector<Hypothesis> completed;

  bool length_capped = true;
  for (size_t step = 0; step < config.max_length; ++step) {
    std::vector<Hypothesis> expanded;
    for (const Hypothesis& hyp : beam) {
      std::vector<double> log_probs = model.NextWordLogProbs(concept_id, hyp.words);
      // Keep the beam_width best continuations of this hypothesis.
      std::vector<size_t> order(log_probs.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<ptrdiff_t>(std::min(
                            config.beam_width, order.size())),
                        order.end(), [&](size_t a, size_t b) {
                          return log_probs[a] > log_probs[b];
                        });
      for (size_t r = 0; r < config.beam_width && r < order.size(); ++r) {
        auto word = static_cast<text::WordId>(order[r]);
        if (word == model.bos_id() || word == model.unk_id()) continue;
        // Residual-trained models put real mass on the empty snippet;
        // min_length keeps generations presentable.
        if (word == model.eos_id() && hyp.words.size() < config.min_length) {
          continue;
        }
        Hypothesis next = hyp;
        next.log_prob += log_probs[order[r]];
        if (word == model.eos_id()) {
          completed.push_back(next);
        } else {
          next.words.push_back(word);
          expanded.push_back(std::move(next));
        }
      }
    }
    if (expanded.empty()) {
      // Every surviving continuation ended in <eos>; the previous beam has
      // been fully consumed and must not be re-reported below.
      length_capped = false;
      break;
    }
    std::sort(expanded.begin(), expanded.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.log_prob > b.log_prob;
              });
    if (expanded.size() > config.beam_width) expanded.resize(config.beam_width);
    beam = std::move(expanded);
  }
  // Hypotheses cut off by max_length count as completed.
  if (length_capped) {
    for (const Hypothesis& hyp : beam) {
      if (!hyp.words.empty()) completed.push_back(hyp);
    }
  }

  std::sort(completed.begin(), completed.end(),
            [](const Hypothesis& a, const Hypothesis& b) {
              return a.log_prob > b.log_prob;
            });
  std::vector<GeneratedSnippet> results;
  for (const Hypothesis& hyp : completed) {
    if (results.size() == config.num_results) break;
    GeneratedSnippet snippet;
    snippet.log_prob = hyp.log_prob;
    for (text::WordId word : hyp.words) {
      snippet.tokens.push_back(model.vocabulary().WordOf(word));
    }
    results.push_back(std::move(snippet));
  }
  return results;
}

}  // namespace ncl::comaid
