#include "comaid/trainer.h"

#include <algorithm>
#include <unordered_set>

#include "nn/tape.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace ncl::comaid {

namespace {

/// Registry handles for `ncl.train.*`, resolved once.
struct TrainMetrics {
  obs::Counter* epochs;
  obs::Counter* batches;
  obs::Counter* examples;
  obs::Histogram* epoch_us;
  obs::Histogram* batch_us;
  obs::Gauge* epoch_loss;
};

const TrainMetrics& GetTrainMetrics() {
  static const TrainMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return TrainMetrics{registry.GetCounter("ncl.train.epochs"),
                        registry.GetCounter("ncl.train.batches"),
                        registry.GetCounter("ncl.train.examples"),
                        registry.GetHistogram("ncl.train.epoch_us"),
                        registry.GetHistogram("ncl.train.batch_us"),
                        registry.GetGauge("ncl.train.epoch_loss")};
  }();
  return metrics;
}

}  // namespace

std::vector<TrainingPair> MakeTrainingPairs(
    const ComAidModel& model,
    const std::vector<std::pair<ontology::ConceptId, std::vector<std::string>>>&
        snippets) {
  std::vector<TrainingPair> pairs;
  pairs.reserve(snippets.size());
  for (const auto& [concept_id, tokens] : snippets) {
    if (tokens.empty()) continue;  // an empty alias teaches nothing
    pairs.push_back(TrainingPair{concept_id, model.MapTokens(tokens)});
  }
  return pairs;
}

std::vector<TrainingPair> MakeResidualAugmentedPairs(
    const ComAidModel& model,
    const std::vector<std::pair<ontology::ConceptId, std::vector<std::string>>>&
        snippets) {
  std::vector<TrainingPair> pairs = MakeTrainingPairs(model, snippets);
  pairs.reserve(pairs.size() * 2);
  for (const auto& [concept_id, tokens] : snippets) {
    if (tokens.empty()) continue;
    const auto& description = model.onto().Get(concept_id).description;
    std::unordered_set<std::string> shared(description.begin(), description.end());
    std::vector<std::string> residual;
    for (const auto& word : tokens) {
      if (shared.count(word) == 0) residual.push_back(word);
    }
    // Empty residuals are kept deliberately: they teach p(<eos> | exact match).
    pairs.push_back(TrainingPair{concept_id, model.MapTokens(residual)});
  }
  return pairs;
}

double ComAidTrainer::TrainBatch(ComAidModel* model, nn::Optimizer* optimizer,
                                 const std::vector<TrainingPair>& batch) const {
  NCL_CHECK(!batch.empty());
  NCL_TRACE_SPAN("ncl.train.batch");
  Stopwatch batch_watch;
  nn::Tape tape;
  double total_loss = 0.0;
  float inv_batch = 1.0f / static_cast<float>(batch.size());
  for (const TrainingPair& pair : batch) {
    tape.Reset();
    nn::VarId loss = model->BuildExampleLoss(tape, pair.concept_id, pair.target);
    total_loss += tape.Value(loss)[0];
    // Seed 1/|B| so accumulated parameter gradients average over the batch.
    tape.Backward(loss, inv_batch);
  }
  optimizer->Step(model->params());
  // The weights moved: cached concept encodings are stale from here on.
  model->NotifyWeightsChanged();
  const TrainMetrics& metrics = GetTrainMetrics();
  metrics.batch_us->RecordMicros(batch_watch.ElapsedMicros());
  metrics.batches->Increment();
  metrics.examples->Increment(batch.size());
  return total_loss / static_cast<double>(batch.size());
}

double ComAidTrainer::Train(ComAidModel* model,
                            const std::vector<TrainingPair>& pairs) const {
  NCL_CHECK(model != nullptr);
  if (pairs.empty()) return 0.0;

  nn::SgdOptimizer optimizer(config_.learning_rate, config_.momentum,
                             config_.clip_norm);
  Rng rng(config_.shuffle_seed);
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    NCL_TRACE_SPAN("ncl.train.epoch");
    Stopwatch epoch_watch;
    rng.Shuffle(order);
    double loss_sum = 0.0;
    size_t example_count = 0;
    for (size_t start = 0; start < order.size(); start += config_.batch_size) {
      size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<TrainingPair> batch;
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) batch.push_back(pairs[order[i]]);
      double mean_loss = TrainBatch(model, &optimizer, batch);
      loss_sum += mean_loss * static_cast<double>(batch.size());
      example_count += batch.size();
    }
    epoch_loss = loss_sum / static_cast<double>(example_count);
    const TrainMetrics& metrics = GetTrainMetrics();
    metrics.epoch_us->RecordMicros(epoch_watch.ElapsedMicros());
    metrics.epochs->Increment();
    metrics.epoch_loss->Set(epoch_loss);
    if (config_.on_epoch) config_.on_epoch(epoch, epoch_loss);
    optimizer.set_learning_rate(optimizer.learning_rate() * config_.lr_decay);
  }
  return epoch_loss;
}

}  // namespace ncl::comaid
