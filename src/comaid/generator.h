// Beam-search snippet generation from a concept.
//
// COM-AID is a translation model: besides *scoring* p(q|c), it can
// *generate* the most likely text snippets for a concept — useful for
// inspecting what the model believes a concept "sounds like" (e.g. in the
// expert-review UI), and for synthesising candidate aliases. Standard beam
// search over the duet decoder, sharing all weights with scoring.

#pragma once

#include <string>
#include <vector>

#include "comaid/model.h"

namespace ncl::comaid {

/// One generated snippet with its sequence log-probability.
struct GeneratedSnippet {
  std::vector<std::string> tokens;
  double log_prob = 0.0;
};

/// Beam-search knobs.
struct GenerateConfig {
  size_t beam_width = 4;
  size_t min_length = 1;    ///< forbid <eos> before this many tokens
  size_t max_length = 12;   ///< hard cap on generated tokens
  size_t num_results = 3;   ///< completed hypotheses to return
};

/// \brief Generate the most likely snippets for `concept_id`, best first.
///
/// Hypotheses end when the decoder emits <eos> or at max_length. Results
/// are sorted by descending total log-probability.
std::vector<GeneratedSnippet> GenerateSnippets(const ComAidModel& model,
                                               ontology::ConceptId concept_id,
                                               const GenerateConfig& config = {});

}  // namespace ncl::comaid
