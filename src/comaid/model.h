// The COM-AID model (§4): COMposite AttentIonal encode-Decode network.
//
// Encodes a concept's canonical description with an LSTM (§4.1.1), then
// decodes a text snippet from the concept representation with a
// text-structure duet decoder (§4.1.2):
//   * text-based attention over the encoder's hidden states (Eqs. 5–6),
//   * structure-based attention over the representations of the concept's
//     ancestors (Eq. 7, Def. 4.1), encoded by the *same* encoder weights,
//   * a composite layer  s~_t = tanh(W_d [s_t; tc_t; sc_t] + b_d)  (Eq. 8),
//   * a vocabulary softmax  p(w_t | w_<t, c) = softmax(W_s s~_t + b_s)
//     (Eq. 9), chained into p(q|c) by Eq. 3.
//
// The two attention switches produce the paper's ablation variants
// (Fig. 6): disabling structural attention yields COM-AID^-c (attentional
// seq2seq, Bahdanau et al. [2]); disabling textual attention yields
// COM-AID^-w; disabling both yields COM-AID^-wc (seq2seq, Sutskever et
// al. [40]).

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "comaid/inference.h"
#include "nn/lstm.h"
#include "nn/parameter.h"
#include "nn/tape.h"
#include "ontology/ontology.h"
#include "pretrain/embeddings.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace ncl {
class ThreadPool;
}

namespace ncl::comaid {

/// Architecture/ablation configuration.
struct ComAidConfig {
  /// Word-embedding and hidden width d. The paper allows them to differ but
  /// assumes equality (§6.1 fn 10); we follow suit.
  size_t dim = 50;
  /// Structural-context depth β (Def. 4.1).
  int32_t beta = 2;
  /// Text-based attention (Eqs. 5–6). Off => COM-AID^-w family.
  bool text_attention = true;
  /// Structure-based attention (Eq. 7). Off => COM-AID^-c family.
  bool structural_attention = true;
  uint64_t seed = 1234;
};

/// Human-readable variant name: "COM-AID", "COM-AID-c", "COM-AID-w",
/// "COM-AID-wc" per the ablation switches.
std::string VariantName(const ComAidConfig& config);

/// \brief The model: parameters + forward/score entry points.
///
/// Thread-safety: while no weight mutation is in flight, the scoring entry
/// points (ScoreLogProb / ScoreLogProbIds / ScoreLogProbFast / EncodeConcept
/// / NextWordLogProbs) are safe to call concurrently. The tape paths read
/// parameter values through private tapes; the fast path additionally shares
/// the concept-encoding cache, whose readers are lock-free and whose lazy
/// fills are race-safe (see ConceptEncodingCache). Weight mutation —
/// training, InitializeEmbeddings, model loading — must be single-threaded
/// and must not overlap any scoring call; each mutation ends with
/// NotifyWeightsChanged(), which invalidates the encoding cache.
class ComAidModel {
 public:
  /// Special decoder tokens (always present in the model vocabulary).
  static constexpr const char* kBos = "<bos>";
  static constexpr const char* kEos = "<eos>";
  static constexpr const char* kUnk = "<unk>";

  /// \param onto the ontology; must outlive the model.
  /// \param extra_snippets additional token sequences whose words join the
  ///        model vocabulary (typically the labeled training aliases).
  ComAidModel(ComAidConfig config, const ontology::Ontology* onto,
              const std::vector<std::vector<std::string>>& extra_snippets);

  /// Copy pre-trained vectors into the embedding table for every word both
  /// vocabularies share (the §4.2 pretrain-and-refine handoff). Returns the
  /// number of rows initialised.
  size_t InitializeEmbeddings(const pretrain::WordEmbeddings& pretrained);

  /// Map tokens to model word ids (<unk> for out-of-vocabulary words).
  std::vector<text::WordId> MapTokens(const std::vector<std::string>& tokens) const;

  /// \brief Record the full encode-decode loss for one training example on
  /// `tape`: -log p(target | concept) (Eq. 10 summand). `target` must be
  /// non-empty and contain word ids only (no specials; <eos> is appended
  /// internally).
  nn::VarId BuildExampleLoss(nn::Tape& tape, ontology::ConceptId concept_id,
                             const std::vector<text::WordId>& target) const;

  /// \brief log p(q | c; Θ): teacher-forced log-likelihood of decoding the
  /// query from the concept (Eq. 3). Thread-safe after training. Reference
  /// tape-based path; prefer ScoreLogProbFast in inference hot loops.
  double ScoreLogProb(ontology::ConceptId concept_id,
                      const std::vector<std::string>& query_tokens) const;

  /// Tape-based ScoreLogProb over pre-mapped word ids (lets callers map the
  /// query once instead of once per candidate).
  double ScoreLogProbIds(ontology::ConceptId concept_id,
                         const std::vector<text::WordId>& target) const;

  /// \brief Tape-free log p(q | c; Θ) — the Phase II hot-loop entry point.
  ///
  /// Numerically equivalent to ScoreLogProbIds (within float round-off; the
  /// parity test pins the two within 1e-5) but builds no autodiff graph and
  /// reuses the concept's cached encoding, so the encoder runs once per
  /// concept instead of once per (query, candidate) pair. `ctx` supplies
  /// per-thread scratch; pass nullptr to use an internal thread_local one.
  /// Thread-safe under the same contract as ScoreLogProb.
  double ScoreLogProbFast(ontology::ConceptId concept_id,
                          const std::vector<text::WordId>& target,
                          InferenceContext* ctx = nullptr) const;

  /// Convenience overload: maps tokens, then scores tape-free.
  double ScoreLogProbFast(ontology::ConceptId concept_id,
                          const std::vector<std::string>& query_tokens) const;

  /// Default lock-step width of the batched scorer: enough lanes to amortise
  /// the weight-matrix streaming, small enough that the per-step activation
  /// working set stays cache-resident.
  static constexpr size_t kDefaultScoreLanes = 32;

  /// \brief Batched tape-free scoring: fill `lanes[i].log_prob` with
  /// log p(target_i | concept_i) for every lane.
  ///
  /// Stacks up to `max_lanes` candidates per decode step into one
  /// activation matrix, so the k independent mat-vecs of k ScoreLogProbFast
  /// calls become GemmNT calls over the shared LSTM/composite/softmax
  /// weights. Ragged target lengths are masked by sorting lanes longest
  /// first and shrinking the active row prefix as short lanes emit <eos>.
  /// Each lane computes exactly the single-lane arithmetic with the same
  /// canonical reduction order, so results are bit-stable under any lane
  /// order, batch composition, or `max_lanes` (pinned by tests); parity
  /// with the tape path stays within the usual 1e-5 bounds.
  ///
  /// Thread-safe under the same contract as ScoreLogProbFast; `ctx`
  /// supplies per-thread scratch (nullptr uses an internal thread_local).
  void ScoreLogProbFastBatch(BatchScoreLane* lanes, size_t num_lanes,
                             BatchInferenceContext* ctx = nullptr,
                             size_t max_lanes = kDefaultScoreLanes) const;

  /// \brief Eagerly fill the concept-encoding cache for the whole ontology
  /// (on `pool` when given). Returns the number of encodings computed.
  /// Optional: ScoreLogProbFast fills the cache lazily per concept.
  size_t PrecomputeConceptEncodings(ThreadPool* pool = nullptr) const;

  /// Drop all cached concept encodings (they are recomputed on demand).
  void InvalidateConceptEncodings() const;

  /// \brief Record that parameter values changed (optimizer step, embedding
  /// initialisation, checkpoint load): bumps the weights version and
  /// invalidates the concept-encoding cache. Must not run concurrently with
  /// scoring.
  void NotifyWeightsChanged();

  /// Monotone counter of weight mutations (cache-coherency diagnostics).
  uint64_t weights_version() const {
    return weights_version_.load(std::memory_order_acquire);
  }

  /// Number of concepts currently in the encoding cache (tests/diagnostics).
  size_t num_cached_encodings() const { return encoding_cache_->NumCached(); }

  /// \brief Log-probability over the next word (softmax of Eq. 9) after
  /// decoding `prefix` from `concept_id`. Index eos_id() closes the
  /// sequence. Powers beam-search generation. Thread-safe after training.
  std::vector<double> NextWordLogProbs(
      ontology::ConceptId concept_id,
      const std::vector<text::WordId>& prefix) const;

  /// \brief The concept representation h_n^c (the encoder's final hidden
  /// state on the canonical description). Used by the Fig. 10 analysis.
  nn::Matrix EncodeConcept(ontology::ConceptId concept_id) const;

  /// \brief The embedding vector of an in-vocabulary word (copy).
  nn::Matrix WordVector(text::WordId id) const;

  /// The concept's canonical description pre-mapped to model word ids.
  const std::vector<text::WordId>& ConceptWords(ontology::ConceptId id) const {
    NCL_DCHECK(id > 0 && static_cast<size_t>(id) < concept_words_.size());
    return concept_words_[static_cast<size_t>(id)];
  }

  const text::Vocabulary& vocabulary() const { return vocab_; }
  const ComAidConfig& config() const { return config_; }
  const ontology::Ontology& onto() const { return *onto_; }
  nn::ParameterStore* params() { return &params_; }
  const nn::ParameterStore& params() const { return params_; }

  text::WordId bos_id() const { return bos_id_; }
  text::WordId eos_id() const { return eos_id_; }
  text::WordId unk_id() const { return unk_id_; }

 private:
  /// Encoder pass over a description; appends per-word hidden states to
  /// `states` and returns the final hidden state h_n.
  nn::VarId EncodeDescription(nn::Tape& tape,
                              const std::vector<text::WordId>& words,
                              std::vector<nn::VarId>* states) const;

  /// Shared forward: loss node for decoding `target` from `concept_id`.
  nn::VarId Forward(nn::Tape& tape, ontology::ConceptId concept_id,
                    const std::vector<text::WordId>& target) const;

  // --- Inference fast path (comaid/inference.cc) -------------------------

  /// Row pointer into the embedding table.
  const float* EmbeddingRow(text::WordId word) const {
    return embeddings_->value.row_data(static_cast<size_t>(word));
  }

  /// Number of composite blocks in Eq. 8 under this config.
  size_t CompositePieces() const;

  /// Tape-free encoder pass filling `out` for one concept.
  void ComputeConceptEncoding(ontology::ConceptId concept_id,
                              ConceptEncoding* out) const;

  /// The cached encoding for `concept_id`, computing and installing it on a
  /// miss.
  const ConceptEncoding& EncodingFor(ontology::ConceptId concept_id) const;

  /// One lock-step tile of ScoreLogProbFastBatch (batch_inference.cc).
  void ScoreBatchTile(BatchScoreLane* lanes, size_t num_lanes,
                      BatchInferenceContext* ctx) const;

  ComAidConfig config_;
  const ontology::Ontology* onto_;
  text::Vocabulary vocab_;
  text::WordId bos_id_ = 0;
  text::WordId eos_id_ = 1;
  text::WordId unk_id_ = 2;

  nn::ParameterStore params_;
  nn::Parameter* embeddings_ = nullptr;  // V x d
  std::unique_ptr<nn::LstmCell> encoder_;
  std::unique_ptr<nn::LstmCell> decoder_;
  nn::Parameter* w_d_ = nullptr;  // d x (d * pieces)
  nn::Parameter* b_d_ = nullptr;  // d x 1
  nn::Parameter* w_s_ = nullptr;  // V x d
  nn::Parameter* b_s_ = nullptr;  // V x 1

  /// Concept descriptions pre-mapped to model word ids.
  std::vector<std::vector<text::WordId>> concept_words_;

  /// Memo of query-independent encoder work, lazily filled by the inference
  /// fast path and cleared by NotifyWeightsChanged().
  mutable std::unique_ptr<ConceptEncodingCache> encoding_cache_;
  std::atomic<uint64_t> weights_version_{0};
};

}  // namespace ncl::comaid
