#include "comaid/model_io.h"

#include <cstdint>
#include <fstream>

namespace ncl::comaid {

namespace {
constexpr uint32_t kMagic = 0x4e434c4d;  // "NCLM"
constexpr uint32_t kVersion = 1;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ofstream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
uint32_t ReadU32(std::ifstream& in) {
  uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
uint64_t ReadU64(std::ifstream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::string ReadString(std::ifstream& in) {
  std::string s(ReadU64(in), '\0');
  in.read(s.data(), static_cast<std::streamsize>(s.size()));
  return s;
}
}  // namespace

Status SaveModel(const ComAidModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  const ComAidConfig& config = model.config();
  WriteU64(out, config.dim);
  WriteU64(out, static_cast<uint64_t>(config.beta));
  WriteU32(out, config.text_attention ? 1 : 0);
  WriteU32(out, config.structural_attention ? 1 : 0);
  WriteU64(out, config.seed);

  const text::Vocabulary& vocab = model.vocabulary();
  WriteU64(out, vocab.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    WriteString(out, vocab.WordOf(static_cast<text::WordId>(i)));
  }
  if (!out.good()) return Status::IOError("write failed for " + path);
  out.close();

  // The weights reuse ParameterStore's standalone format in a sibling file.
  return model.params().Save(path + ".params");
}

Result<std::unique_ptr<ComAidModel>> LoadModel(const std::string& path,
                                               const ontology::Ontology* onto) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  if (ReadU32(in) != kMagic) return Status::IOError("bad magic in " + path);
  if (ReadU32(in) != kVersion) return Status::IOError("bad version in " + path);

  ComAidConfig config;
  config.dim = ReadU64(in);
  config.beta = static_cast<int32_t>(ReadU64(in));
  config.text_attention = ReadU32(in) != 0;
  config.structural_attention = ReadU32(in) != 0;
  config.seed = ReadU64(in);

  uint64_t vocab_size = ReadU64(in);
  std::vector<std::string> words(vocab_size);
  for (auto& word : words) word = ReadString(in);
  if (!in) return Status::IOError("truncated checkpoint " + path);

  // Rebuild the model with the checkpointed vocabulary: the ontology words
  // come first (as in the original construction); any remaining checkpoint
  // words are supplied as extra snippets so ids line up, then verified.
  std::vector<std::vector<std::string>> extra;
  for (const auto& word : words) extra.push_back({word});
  auto model = std::make_unique<ComAidModel>(config, onto, extra);

  if (model->vocabulary().size() != vocab_size) {
    return Status::FailedPrecondition(
        "vocabulary size mismatch: checkpoint has " + std::to_string(vocab_size) +
        " words, rebuilt model has " + std::to_string(model->vocabulary().size()) +
        " — was the ontology changed?");
  }
  for (size_t i = 0; i < vocab_size; ++i) {
    if (model->vocabulary().WordOf(static_cast<text::WordId>(i)) != words[i]) {
      return Status::FailedPrecondition(
          "vocabulary mismatch at id " + std::to_string(i) +
          " — was the ontology changed?");
    }
  }
  NCL_RETURN_NOT_OK(model->params()->Load(path + ".params"));
  model->NotifyWeightsChanged();
  return model;
}

}  // namespace ncl::comaid
