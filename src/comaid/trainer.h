// COM-AID refinement-phase training (§4.2).
//
// Maximum-likelihood training over ⟨d^c, d^c_j⟩ pairs (canonical description
// in, alias out) with mini-batch SGD: Eq. 10's objective is the mean
// negative log-likelihood over the training pairs. Gradients flow through
// the decoder, both attentions, the encoder, the ancestor encodings and the
// word embeddings, exactly as the paper describes for back-propagation.

#pragma once

#include <functional>
#include <vector>

#include "comaid/model.h"
#include "nn/optimizer.h"

namespace ncl::comaid {

/// One training pair: decode `target` from `concept_id`.
struct TrainingPair {
  ontology::ConceptId concept_id = ontology::kInvalidConcept;
  std::vector<text::WordId> target;
};

/// Training hyperparameters.
struct TrainConfig {
  size_t epochs = 8;
  size_t batch_size = 16;
  double learning_rate = 0.1;
  double momentum = 0.9;
  double clip_norm = 5.0;
  /// Learning-rate decay factor applied after each epoch.
  double lr_decay = 0.95;
  uint64_t shuffle_seed = 31;
  /// Optional per-epoch callback: (epoch index, mean loss).
  std::function<void(size_t, double)> on_epoch;
};

/// \brief Convert labeled snippets to training pairs using the model vocab.
std::vector<TrainingPair> MakeTrainingPairs(
    const ComAidModel& model,
    const std::vector<std::pair<ontology::ConceptId, std::vector<std::string>>>&
        snippets);

/// \brief Training pairs augmented with *residual* targets.
///
/// For every alias this adds a second pair whose target is the alias with
/// the words of the concept's canonical description removed — the exact
/// target distribution the online Phase II scores under shared-word
/// removal (§5), including the empty-residue case that decodes straight to
/// <eos>. Aligning training with that inference-time transformation is
/// what lets raw log-probability ranking reward lexical overlap without
/// going out of distribution.
std::vector<TrainingPair> MakeResidualAugmentedPairs(
    const ComAidModel& model,
    const std::vector<std::pair<ontology::ConceptId, std::vector<std::string>>>&
        snippets);

/// \brief Trainer: runs the §4.2 refinement phase.
class ComAidTrainer {
 public:
  explicit ComAidTrainer(TrainConfig config) : config_(std::move(config)) {}

  /// Train `model` on `pairs`; returns the final epoch's mean loss per pair.
  double Train(ComAidModel* model, const std::vector<TrainingPair>& pairs) const;

  /// One gradient step over a batch; returns the batch mean loss.
  /// Exposed for the incremental-feedback experiment (Appendix A.2), which
  /// feeds single examples and snapshots representations between steps.
  double TrainBatch(ComAidModel* model, nn::Optimizer* optimizer,
                    const std::vector<TrainingPair>& batch) const;

  const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace ncl::comaid
