// Tape-free inference fast path (see comaid/inference.h).
//
// ScoreLogProbFast mirrors ComAidModel::Forward step for step, but on raw
// Matrix values: no tape nodes, no backward closures, no per-step heap
// allocations. Parity with the tape path is pinned to 1e-5 in
// tests/comaid/inference_test.cc; keep the float/double accumulation
// choices below in sync with tape.cc when touching either.

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "comaid/model.h"
#include "nn/vecmath.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ncl::comaid {

namespace internal {

const ConceptCacheMetrics& GetConceptCacheMetrics() {
  static const ConceptCacheMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return ConceptCacheMetrics{
        registry.GetCounter("ncl.concept_cache.hits"),
        registry.GetCounter("ncl.concept_cache.misses"),
        registry.GetCounter("ncl.concept_cache.fills"),
        registry.GetCounter("ncl.concept_cache.fill_races"),
        registry.GetCounter("ncl.concept_cache.invalidations"),
        registry.GetCounter("ncl.concept_cache.evictions")};
  }();
  return metrics;
}

/// Fused dot-product attention on values (Eqs. 5-7). Defined here, declared
/// in inference.h: the batched scorer (batch_inference.cc) runs the same
/// routine per lane so single and batched attention are identical.
void AttentionInto(const nn::Matrix& values, const float* key, float* scores,
                   float* out) {
  const size_t n = values.rows();
  const size_t d = values.cols();
  values.MatVecInto(key, scores);  // e_r = v_r . s

  float max_score = -std::numeric_limits<float>::infinity();
  for (size_t r = 0; r < n; ++r) max_score = std::max(max_score, scores[r]);
  nn::ExpShiftedInplace(scores, n, max_score);
  float denom = 0.0f;
  for (size_t r = 0; r < n; ++r) denom += scores[r];
  const float inv_denom = 1.0f / denom;

  std::fill(out, out + d, 0.0f);
  for (size_t r = 0; r < n; ++r) {
    const float alpha = scores[r] * inv_denom;
    const float* row = values.row_data(r);
    for (size_t j = 0; j < d; ++j) out[j] += alpha * row[j];
  }
}

double CrossEntropyValue(const float* logits, size_t vocab, int32_t gold) {
  float max_logit = -std::numeric_limits<float>::infinity();
  for (size_t i = 0; i < vocab; ++i) max_logit = std::max(max_logit, logits[i]);
  double denom = nn::SumExpShifted(logits, vocab, max_logit);
  double log_denom = std::log(denom) + static_cast<double>(max_logit);
  return log_denom - static_cast<double>(logits[static_cast<size_t>(gold)]);
}

}  // namespace internal

namespace {
using internal::AttentionInto;
using internal::CrossEntropyValue;
}  // namespace

size_t ComAidModel::CompositePieces() const {
  size_t pieces = 1;
  if (config_.text_attention) ++pieces;
  if (config_.structural_attention) ++pieces;
  return pieces;
}

void ComAidModel::ComputeConceptEncoding(ontology::ConceptId concept_id,
                                         ConceptEncoding* out) const {
  const size_t d = config_.dim;
  const auto& words = concept_words_[static_cast<size_t>(concept_id)];
  NCL_DCHECK(!words.empty());

  // Encoder pass over the canonical description, keeping every h_t (the
  // text attention needs the full state sequence, Eqs. 5-6).
  std::vector<float> zero(d, 0.0f);
  std::vector<float> cell(d, 0.0f);
  std::vector<float> scratch(2 * d);
  out->encoder_states = nn::Matrix(words.size(), d);
  const float* h_prev = zero.data();
  for (size_t t = 0; t < words.size(); ++t) {
    float* h_out = out->encoder_states.row_data(t);
    encoder_->StepValue(EmbeddingRow(words[t]), h_prev, cell.data(), h_out,
                        cell.data(), scratch.data());
    h_prev = h_out;
  }

  // Structural context (Def. 4.1): final encoder states of the ancestors,
  // with duplicate slots kept so the attention softmax matches the tape
  // path's repeated values.
  out->ancestors = nn::Matrix();
  if (config_.structural_attention && config_.beta > 0) {
    std::vector<ontology::ConceptId> context =
        onto_->AncestorContext(concept_id, config_.beta);
    if (!context.empty()) {
      out->ancestors = nn::Matrix(context.size(), d);
      std::unordered_map<ontology::ConceptId, size_t> first_row;
      std::vector<float> h(d);
      for (size_t r = 0; r < context.size(); ++r) {
        float* row = out->ancestors.row_data(r);
        auto it = first_row.find(context[r]);
        if (it != first_row.end()) {
          const float* src = out->ancestors.row_data(it->second);
          std::copy(src, src + d, row);
          continue;
        }
        const auto& anc_words = concept_words_[static_cast<size_t>(context[r])];
        std::fill(h.begin(), h.end(), 0.0f);
        std::fill(cell.begin(), cell.end(), 0.0f);
        for (text::WordId word : anc_words) {
          encoder_->StepValue(EmbeddingRow(word), h.data(), cell.data(),
                              h.data(), cell.data(), scratch.data());
        }
        std::copy(h.begin(), h.end(), row);
        first_row.emplace(context[r], r);
      }
    }
  }
}

const ConceptEncoding& ComAidModel::EncodingFor(
    ontology::ConceptId concept_id) const {
  const size_t slot = static_cast<size_t>(concept_id);
  if (const ConceptEncoding* cached = encoding_cache_->Get(slot)) {
    return *cached;
  }
  auto encoding = std::make_unique<ConceptEncoding>();
  ComputeConceptEncoding(concept_id, encoding.get());
  return *encoding_cache_->Put(slot, std::move(encoding));
}

double ComAidModel::ScoreLogProbFast(ontology::ConceptId concept_id,
                                     const std::vector<text::WordId>& target,
                                     InferenceContext* ctx) const {
  NCL_CHECK(concept_id > 0 &&
            static_cast<size_t>(concept_id) < concept_words_.size())
      << "invalid concept id " << concept_id;

  const ConceptEncoding& enc = EncodingFor(concept_id);
  const size_t d = config_.dim;
  const size_t vocab = vocab_.size();

  thread_local InferenceContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  ctx->Prepare(d, vocab, CompositePieces(),
               std::max(enc.encoder_states.rows(), enc.ancestors.rows()));

  // Decoder initial state: s_0 = h_n^c, cell = 0 (§4.1.2).
  float* h = ctx->h();
  float* cell = ctx->c();
  std::copy(enc.final_state(), enc.final_state() + d, h);
  std::fill(cell, cell + d, 0.0f);

  const bool use_text = config_.text_attention;
  const bool use_structure =
      config_.structural_attention && enc.ancestors.rows() > 0;
  [[maybe_unused]] const size_t composite_len =
      (1 + (use_text ? 1 : 0) + (use_structure ? 1 : 0)) * d;
  NCL_DCHECK(composite_len == w_d_->value.cols());

  // Sum the per-word losses in float, exactly like Tape::AddScalars over
  // float-valued SoftmaxCrossEntropy nodes, so fast and tape paths agree to
  // float round-off rather than diverging on long targets.
  float loss_sum = 0.0f;
  text::WordId prev_word = bos_id_;
  for (size_t t = 0; t <= target.size(); ++t) {
    decoder_->StepValue(EmbeddingRow(prev_word), h, cell, h, cell,
                        ctx->lstm_scratch());

    float* composite = ctx->composite();
    std::copy(h, h + d, composite);
    size_t offset = d;
    if (use_text) {
      AttentionInto(enc.encoder_states, h, ctx->attn_scores(),
                    composite + offset);
      offset += d;
    }
    if (use_structure) {
      AttentionInto(enc.ancestors, h, ctx->attn_scores(), composite + offset);
      offset += d;
    }

    // s~_t = tanh(W_d [s_t; tc_t; sc_t] + b_d)  (Eq. 8)
    float* s_tilde = ctx->s_tilde();
    w_d_->value.MatVecInto(composite, s_tilde);
    const float* b_d = b_d_->value.data();
    for (size_t j = 0; j < d; ++j) s_tilde[j] += b_d[j];
    nn::TanhInplace(s_tilde, d);

    // logits = W_s s~_t + b_s  (Eq. 9)
    float* logits = ctx->logits();
    w_s_->value.MatVecInto(s_tilde, logits);
    const float* b_s = b_s_->value.data();
    for (size_t i = 0; i < vocab; ++i) logits[i] += b_s[i];

    text::WordId gold = t < target.size() ? target[t] : eos_id_;
    loss_sum += static_cast<float>(
        CrossEntropyValue(logits, vocab, static_cast<int32_t>(gold)));
    prev_word = gold;
  }
  return -static_cast<double>(loss_sum);
}

double ComAidModel::ScoreLogProbFast(
    ontology::ConceptId concept_id,
    const std::vector<std::string>& query_tokens) const {
  return ScoreLogProbFast(concept_id, MapTokens(query_tokens), nullptr);
}

size_t ComAidModel::PrecomputeConceptEncodings(ThreadPool* pool) const {
  std::vector<ontology::ConceptId> ids = onto_->AllConcepts();
  std::atomic<size_t> computed{0};
  auto encode_one = [&](size_t i) {
    const size_t slot = static_cast<size_t>(ids[i]);
    if (encoding_cache_->Get(slot) != nullptr) return;
    auto encoding = std::make_unique<ConceptEncoding>();
    ComputeConceptEncoding(ids[i], encoding.get());
    encoding_cache_->Put(slot, std::move(encoding));
    computed.fetch_add(1, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->ParallelFor(ids.size(), encode_one);
  } else {
    for (size_t i = 0; i < ids.size(); ++i) encode_one(i);
  }
  return computed.load();
}

void ComAidModel::InvalidateConceptEncodings() const { encoding_cache_->Clear(); }

void ComAidModel::NotifyWeightsChanged() {
  weights_version_.fetch_add(1, std::memory_order_acq_rel);
  InvalidateConceptEncodings();
}

}  // namespace ncl::comaid
