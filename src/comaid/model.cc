#include "comaid/model.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "util/logging.h"

namespace ncl::comaid {

std::string VariantName(const ComAidConfig& config) {
  if (config.text_attention && config.structural_attention) return "COM-AID";
  if (config.text_attention) return "COM-AID-c";
  if (config.structural_attention) return "COM-AID-w";
  return "COM-AID-wc";
}

ComAidModel::ComAidModel(ComAidConfig config, const ontology::Ontology* onto,
                         const std::vector<std::vector<std::string>>& extra_snippets)
    : config_(config), onto_(onto) {
  NCL_CHECK(onto_ != nullptr);
  NCL_CHECK(config_.dim > 0);
  NCL_CHECK(config_.beta >= 0);

  bos_id_ = vocab_.Add(kBos);
  eos_id_ = vocab_.Add(kEos);
  unk_id_ = vocab_.Add(kUnk);
  for (ontology::ConceptId id : onto_->AllConcepts()) {
    for (const auto& word : onto_->Get(id).description) vocab_.Add(word);
  }
  for (const auto& snippet : extra_snippets) {
    for (const auto& word : snippet) vocab_.Add(word);
  }

  Rng rng(config_.seed);
  const size_t d = config_.dim;
  const size_t v = vocab_.size();
  embeddings_ = params_.Create("embeddings", v, d, nn::Init::kSmallUniform, rng);
  encoder_ = std::make_unique<nn::LstmCell>("encoder", d, d, &params_, rng);
  decoder_ = std::make_unique<nn::LstmCell>("decoder", d, d, &params_, rng);

  size_t pieces = 1;  // s_t is always part of the composite vector
  if (config_.text_attention) ++pieces;
  if (config_.structural_attention) ++pieces;
  w_d_ = params_.Create("W_d", d, d * pieces, nn::Init::kXavier, rng);
  b_d_ = params_.Create("b_d", d, 1, nn::Init::kZero, rng);
  w_s_ = params_.Create("W_s", v, d, nn::Init::kXavier, rng);
  b_s_ = params_.Create("b_s", v, 1, nn::Init::kZero, rng);

  // Pre-map every concept description to word ids (all in-vocabulary).
  concept_words_.resize(onto_->size());
  for (ontology::ConceptId id : onto_->AllConcepts()) {
    concept_words_[static_cast<size_t>(id)] = MapTokens(onto_->Get(id).description);
  }

  encoding_cache_ = std::make_unique<ConceptEncodingCache>(onto_->size());
}

size_t ComAidModel::InitializeEmbeddings(const pretrain::WordEmbeddings& pretrained) {
  NCL_CHECK(pretrained.dim() == config_.dim)
      << "pretrained embedding width " << pretrained.dim()
      << " != model dim " << config_.dim;
  size_t initialised = 0;
  for (size_t i = 0; i < vocab_.size(); ++i) {
    auto id = static_cast<text::WordId>(i);
    text::WordId src = pretrained.vocabulary().Lookup(vocab_.WordOf(id));
    if (src == text::Vocabulary::kUnknown) continue;
    const float* vec = pretrained.VectorOf(src);
    float* dst = embeddings_->value.row_data(i);
    for (size_t c = 0; c < config_.dim; ++c) dst[c] = vec[c];
    ++initialised;
  }
  NotifyWeightsChanged();
  return initialised;
}

std::vector<text::WordId> ComAidModel::MapTokens(
    const std::vector<std::string>& tokens) const {
  std::vector<text::WordId> ids;
  ids.reserve(tokens.size());
  for (const auto& token : tokens) {
    text::WordId id = vocab_.Lookup(token);
    ids.push_back(id == text::Vocabulary::kUnknown ? unk_id_ : id);
  }
  return ids;
}

nn::VarId ComAidModel::EncodeDescription(nn::Tape& tape,
                                         const std::vector<text::WordId>& words,
                                         std::vector<nn::VarId>* states) const {
  NCL_DCHECK(!words.empty());
  nn::LstmState state = encoder_->InitialState(tape);
  for (text::WordId word : words) {
    nn::VarId x = tape.Lookup(embeddings_, static_cast<size_t>(word));
    state = encoder_->Step(tape, x, state);
    if (states != nullptr) states->push_back(state.h);
  }
  return state.h;
}

nn::VarId ComAidModel::Forward(nn::Tape& tape, ontology::ConceptId concept_id,
                               const std::vector<text::WordId>& target) const {
  NCL_CHECK(concept_id > 0 &&
            static_cast<size_t>(concept_id) < concept_words_.size())
      << "invalid concept id " << concept_id;
  // An empty target is legal and decodes only <eos>: p(empty | c). The
  // online linker produces it when every query word is shared with the
  // candidate's canonical description (§5 Phase II).

  // --- Encode the canonical description (§4.1.1). ---
  std::vector<nn::VarId> encoder_states;
  const auto& words = concept_words_[static_cast<size_t>(concept_id)];
  nn::VarId concept_repr = EncodeDescription(tape, words, &encoder_states);

  // --- Encode the structural context (Def. 4.1) with shared weights. ---
  std::vector<nn::VarId> ancestor_reprs;
  if (config_.structural_attention && config_.beta > 0) {
    std::unordered_map<ontology::ConceptId, nn::VarId> cache;
    for (ontology::ConceptId anc : onto_->AncestorContext(concept_id, config_.beta)) {
      auto it = cache.find(anc);
      if (it == cache.end()) {
        nn::VarId repr = EncodeDescription(
            tape, concept_words_[static_cast<size_t>(anc)], nullptr);
        it = cache.emplace(anc, repr).first;
      }
      ancestor_reprs.push_back(it->second);
    }
  }

  // --- Decode the target with the duet decoder (§4.1.2). ---
  nn::LstmState state = decoder_->InitialStateFromHidden(tape, concept_repr);
  std::vector<nn::VarId> losses;
  losses.reserve(target.size() + 1);

  text::WordId prev_word = bos_id_;
  for (size_t t = 0; t <= target.size(); ++t) {
    nn::VarId x = tape.Lookup(embeddings_, static_cast<size_t>(prev_word));
    state = decoder_->Step(tape, x, state);

    std::vector<nn::VarId> composite{state.h};
    if (config_.text_attention) {
      composite.push_back(tape.Attention(encoder_states, state.h));
    }
    if (config_.structural_attention && !ancestor_reprs.empty()) {
      composite.push_back(tape.Attention(ancestor_reprs, state.h));
    }

    nn::VarId merged =
        composite.size() == 1 ? composite[0] : tape.ConcatRows(composite);
    nn::VarId s_tilde = tape.Tanh(
        tape.Add(tape.MatMul(tape.Param(w_d_), merged), tape.Param(b_d_)));
    nn::VarId logits =
        tape.Add(tape.MatMul(tape.Param(w_s_), s_tilde), tape.Param(b_s_));

    // Decode target[t], with <eos> closing the sequence.
    text::WordId gold = t < target.size() ? target[t] : eos_id_;
    losses.push_back(tape.SoftmaxCrossEntropy(logits, gold));
    prev_word = gold;
  }
  return tape.AddScalars(losses);
}

nn::VarId ComAidModel::BuildExampleLoss(nn::Tape& tape,
                                        ontology::ConceptId concept_id,
                                        const std::vector<text::WordId>& target) const {
  return Forward(tape, concept_id, target);
}

double ComAidModel::ScoreLogProb(ontology::ConceptId concept_id,
                                 const std::vector<std::string>& query_tokens) const {
  return ScoreLogProbIds(concept_id, MapTokens(query_tokens));
}

double ComAidModel::ScoreLogProbIds(ontology::ConceptId concept_id,
                                    const std::vector<text::WordId>& target) const {
  nn::Tape tape;
  nn::VarId loss = Forward(tape, concept_id, target);
  return -static_cast<double>(tape.Value(loss)[0]);
}

std::vector<double> ComAidModel::NextWordLogProbs(
    ontology::ConceptId concept_id, const std::vector<text::WordId>& prefix) const {
  NCL_CHECK(concept_id > 0 &&
            static_cast<size_t>(concept_id) < concept_words_.size());
  nn::Tape tape;

  // Mirror of Forward() up to the step after `prefix`.
  std::vector<nn::VarId> encoder_states;
  const auto& words = concept_words_[static_cast<size_t>(concept_id)];
  nn::VarId concept_repr = EncodeDescription(tape, words, &encoder_states);

  std::vector<nn::VarId> ancestor_reprs;
  if (config_.structural_attention && config_.beta > 0) {
    std::unordered_map<ontology::ConceptId, nn::VarId> cache;
    for (ontology::ConceptId anc : onto_->AncestorContext(concept_id, config_.beta)) {
      auto it = cache.find(anc);
      if (it == cache.end()) {
        nn::VarId repr = EncodeDescription(
            tape, concept_words_[static_cast<size_t>(anc)], nullptr);
        it = cache.emplace(anc, repr).first;
      }
      ancestor_reprs.push_back(it->second);
    }
  }

  nn::LstmState state = decoder_->InitialStateFromHidden(tape, concept_repr);
  text::WordId prev_word = bos_id_;
  nn::VarId logits = nn::kInvalidVar;
  for (size_t t = 0; t <= prefix.size(); ++t) {
    nn::VarId x = tape.Lookup(embeddings_, static_cast<size_t>(prev_word));
    state = decoder_->Step(tape, x, state);
    std::vector<nn::VarId> composite{state.h};
    if (config_.text_attention) {
      composite.push_back(tape.Attention(encoder_states, state.h));
    }
    if (config_.structural_attention && !ancestor_reprs.empty()) {
      composite.push_back(tape.Attention(ancestor_reprs, state.h));
    }
    nn::VarId merged =
        composite.size() == 1 ? composite[0] : tape.ConcatRows(composite);
    nn::VarId s_tilde = tape.Tanh(
        tape.Add(tape.MatMul(tape.Param(w_d_), merged), tape.Param(b_d_)));
    logits = tape.Add(tape.MatMul(tape.Param(w_s_), s_tilde), tape.Param(b_s_));
    if (t < prefix.size()) prev_word = prefix[t];
  }

  // Log-softmax over the final logits.
  const nn::Matrix& z = tape.Value(logits);
  double max_logit = z[0];
  for (size_t i = 1; i < z.size(); ++i) max_logit = std::max<double>(max_logit, z[i]);
  double denom = 0.0;
  for (size_t i = 0; i < z.size(); ++i) denom += std::exp(z[i] - max_logit);
  double log_denom = std::log(denom) + max_logit;
  std::vector<double> log_probs(z.size());
  for (size_t i = 0; i < z.size(); ++i) log_probs[i] = z[i] - log_denom;
  return log_probs;
}

nn::Matrix ComAidModel::EncodeConcept(ontology::ConceptId concept_id) const {
  NCL_CHECK(concept_id > 0 &&
            static_cast<size_t>(concept_id) < concept_words_.size());
  nn::Tape tape;
  nn::VarId repr =
      EncodeDescription(tape, concept_words_[static_cast<size_t>(concept_id)], nullptr);
  return tape.Value(repr);
}

nn::Matrix ComAidModel::WordVector(text::WordId id) const {
  NCL_CHECK(id >= 0 && static_cast<size_t>(id) < vocab_.size());
  nn::Matrix vec(config_.dim, 1);
  const float* src = embeddings_->value.row_data(static_cast<size_t>(id));
  for (size_t c = 0; c < config_.dim; ++c) vec[c] = src[c];
  return vec;
}

}  // namespace ncl::comaid
