// Whole-model persistence for COM-AID.
//
// ParameterStore::Save/Load covers the weights; a deployable checkpoint
// must also pin the architecture configuration and the model vocabulary
// (word-id order determines embedding rows and softmax indices). SaveModel
// writes all three; LoadModel reconstructs a ComAidModel against the same
// ontology and verifies the vocabulary matches bit-for-bit.

#pragma once

#include <memory>
#include <string>

#include "comaid/model.h"
#include "util/status.h"

namespace ncl::comaid {

/// \brief Write config + vocabulary + parameters to `path`.
Status SaveModel(const ComAidModel& model, const std::string& path);

/// \brief Reconstruct a model from `path` against `onto`.
///
/// The ontology must be the one the model was built with (same concepts in
/// the same insertion order); a vocabulary mismatch — e.g. an ontology with
/// different descriptions — is detected and reported.
Result<std::unique_ptr<ComAidModel>> LoadModel(const std::string& path,
                                               const ontology::Ontology* onto);

}  // namespace ncl::comaid
