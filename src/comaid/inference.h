// Inference fast path support: the concept-encoding cache and per-thread
// scratch for tape-free Phase II scoring (§5).
//
// ScoreLogProb builds a fresh autodiff tape and re-runs the LSTM encoder
// over the candidate's canonical description for every (query, candidate)
// pair, although concept encodings are query-independent and inference
// never calls Backward. The fast path splits that work:
//
//   * ConceptEncoding holds everything about a concept that does not depend
//     on the query: the encoder's per-step hidden states (consumed by the
//     text attention, Eqs. 5-6) and the structural-context representations
//     (consumed by the structure attention, Eq. 7).
//   * ConceptEncodingCache memoises ConceptEncodings per concept, filled
//     lazily on first use or eagerly for the whole ontology
//     (ComAidModel::PrecomputeConceptEncodings). Readers are lock-free.
//   * InferenceContext is reusable scratch for the decoder loop so a score
//     evaluation performs zero heap allocations after warm-up.
//
// Invalidation contract: cached encodings are functions of the encoder
// weights. ComAidModel::NotifyWeightsChanged() (called by the trainer after
// every optimizer step, by InitializeEmbeddings, and by model loading) bumps
// the model's weights version and clears the cache. Weight mutation must
// not run concurrently with scoring — same contract as training itself.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/matrix.h"
#include "obs/metrics.h"
#include "ontology/ontology.h"
#include "text/vocabulary.h"

namespace ncl::comaid {

namespace internal {

/// Fused dot-product attention on values (Eqs. 5-7): out = sum_r alpha_r v_r
/// with alpha = softmax(values * key). `scores` must hold values.rows()
/// floats; `out` holds values.cols() floats and is overwritten. Shared by
/// the single-lane and batched scorers so both produce identical values.
void AttentionInto(const nn::Matrix& values, const float* key, float* scores,
                   float* out);

/// -log softmax(logits)[gold] with the same accumulation scheme as
/// Tape::SoftmaxCrossEntropy (float max, double denominator).
double CrossEntropyValue(const float* logits, size_t vocab, int32_t gold);

/// Cache observability, published under `ncl.concept_cache.*`. Handles are
/// resolved once (defined in inference.cc); every ConceptEncodingCache in
/// the process shares them.
struct ConceptCacheMetrics {
  obs::Counter* hits;           ///< Get returned a cached encoding
  obs::Counter* misses;         ///< Get found the slot empty
  obs::Counter* fills;          ///< Put installed a new encoding
  obs::Counter* fill_races;     ///< Put lost the install race (work wasted)
  obs::Counter* invalidations;  ///< Clear calls (weight mutations)
  obs::Counter* evictions;      ///< encodings dropped across all Clears
};
const ConceptCacheMetrics& GetConceptCacheMetrics();
}  // namespace internal

/// \brief Query-independent encoder outputs for one concept.
struct ConceptEncoding {
  /// Per-step encoder hidden states over the canonical description, one row
  /// per description word (n x d). Row-major, so the text attention's score
  /// pass e_r = h_r . s is a single matvec.
  nn::Matrix encoder_states;
  /// Structural-context representations, one row per Def. 4.1 ancestor slot
  /// (m x d). Padded/duplicated slots keep their duplicate rows so the
  /// attention softmax matches the tape path exactly. Empty when structural
  /// attention is off or the context is empty.
  nn::Matrix ancestors;

  /// The concept representation h_n^c (final encoder state).
  const float* final_state() const {
    return encoder_states.row_data(encoder_states.rows() - 1);
  }
};

/// \brief Lock-free-read memo of ConceptEncodings, indexed by concept id.
///
/// Get/Put are safe to call concurrently (Phase II scores candidates on a
/// thread pool); when two threads race to encode the same concept the loser's
/// encoding is discarded and the winner's is returned to both. Clear must
/// not run concurrently with readers — it is only called from
/// NotifyWeightsChanged, which by contract happens while no scoring runs.
class ConceptEncodingCache {
 public:
  explicit ConceptEncodingCache(size_t num_slots) : slots_(num_slots) {}
  ~ConceptEncodingCache() { Clear(); }

  ConceptEncodingCache(const ConceptEncodingCache&) = delete;
  ConceptEncodingCache& operator=(const ConceptEncodingCache&) = delete;

  /// The cached encoding for `slot`, or nullptr when absent. Counts a
  /// `ncl.concept_cache` hit or miss.
  const ConceptEncoding* Get(size_t slot) const {
    const ConceptEncoding* encoding =
        slots_[slot].load(std::memory_order_acquire);
    const auto& metrics = internal::GetConceptCacheMetrics();
    (encoding != nullptr ? metrics.hits : metrics.misses)->Increment();
    return encoding;
  }

  /// Install `encoding` at `slot` unless another thread won the race; either
  /// way returns the encoding now cached at `slot`.
  const ConceptEncoding* Put(size_t slot,
                             std::unique_ptr<ConceptEncoding> encoding) {
    ConceptEncoding* expected = nullptr;
    ConceptEncoding* candidate = encoding.release();
    if (slots_[slot].compare_exchange_strong(expected, candidate,
                                             std::memory_order_acq_rel)) {
      internal::GetConceptCacheMetrics().fills->Increment();
      return candidate;
    }
    delete candidate;  // lost the race; `expected` holds the winner
    internal::GetConceptCacheMetrics().fill_races->Increment();
    return expected;
  }

  /// Drop every cached encoding. Not safe concurrently with Get/Put.
  void Clear() {
    uint64_t evicted = 0;
    for (auto& slot : slots_) {
      ConceptEncoding* encoding = slot.exchange(nullptr, std::memory_order_acq_rel);
      if (encoding != nullptr) ++evicted;
      delete encoding;
    }
    const auto& metrics = internal::GetConceptCacheMetrics();
    metrics.invalidations->Increment();
    metrics.evictions->Increment(evicted);
  }

  size_t num_slots() const { return slots_.size(); }

  /// Number of populated slots (O(n); diagnostics/tests).
  size_t NumCached() const {
    size_t count = 0;
    for (const auto& slot : slots_) {
      if (slot.load(std::memory_order_acquire) != nullptr) ++count;
    }
    return count;
  }

 private:
  std::vector<std::atomic<ConceptEncoding*>> slots_;
};

/// \brief Reusable scratch buffers for one scoring thread.
///
/// A context may be reused across calls and across models; Prepare()
/// re-sizes buffers only when they grow. Not thread-safe: use one context
/// per thread (ScoreLogProbFast falls back to a thread_local one when none
/// is passed).
class InferenceContext {
 public:
  /// Ensure capacity for hidden width `dim`, vocabulary size `vocab`,
  /// `pieces` composite blocks (Eq. 8) and attention over up to `attn_rows`
  /// values.
  void Prepare(size_t dim, size_t vocab, size_t pieces, size_t attn_rows) {
    Grow(h_, dim);
    Grow(c_, dim);
    Grow(lstm_scratch_, 2 * dim);
    Grow(composite_, pieces * dim);
    Grow(s_tilde_, dim);
    Grow(logits_, vocab);
    Grow(attn_scores_, attn_rows);
  }

  float* h() { return h_.data(); }
  float* c() { return c_.data(); }
  float* lstm_scratch() { return lstm_scratch_.data(); }
  float* composite() { return composite_.data(); }
  float* s_tilde() { return s_tilde_.data(); }
  float* logits() { return logits_.data(); }
  float* attn_scores() { return attn_scores_.data(); }

 private:
  static void Grow(std::vector<float>& buf, size_t n) {
    if (buf.size() < n) buf.resize(n);
  }

  std::vector<float> h_;
  std::vector<float> c_;
  std::vector<float> lstm_scratch_;
  std::vector<float> composite_;
  std::vector<float> s_tilde_;
  std::vector<float> logits_;
  std::vector<float> attn_scores_;
};

/// \brief One candidate in a batched Phase-II scoring call.
///
/// The target is borrowed (typically the shared-word-filtered query residue
/// the linker builds per candidate) and must outlive the call; `log_prob`
/// is the output slot.
struct BatchScoreLane {
  ontology::ConceptId concept_id = 0;
  const std::vector<text::WordId>* target = nullptr;
  double log_prob = 0.0;  ///< out: log p(target | concept)
};

/// \brief Reusable scratch for the batched scorer (one per thread).
///
/// Buffers are sized for `lanes` lock-step rows; Prepare grows them but
/// never shrinks, so a context reused across calls allocates only on the
/// largest shape seen.
class BatchInferenceContext {
 public:
  void Prepare(size_t lanes, size_t dim, size_t vocab, size_t pieces,
               size_t attn_rows) {
    Grow(h_, lanes * dim);
    Grow(c_, lanes * dim);
    Grow(x_, lanes * dim);
    Grow(lstm_scratch_, 2 * lanes * dim);
    Grow(composite_, lanes * pieces * dim);
    Grow(s_tilde_, lanes * dim);
    Grow(logits_, lanes * vocab);
    Grow(attn_scores_, attn_rows);
  }

  float* h() { return h_.data(); }
  float* c() { return c_.data(); }
  float* x() { return x_.data(); }
  float* lstm_scratch() { return lstm_scratch_.data(); }
  float* composite() { return composite_.data(); }
  float* s_tilde() { return s_tilde_.data(); }
  float* logits() { return logits_.data(); }
  float* attn_scores() { return attn_scores_.data(); }

 private:
  static void Grow(std::vector<float>& buf, size_t n) {
    if (buf.size() < n) buf.resize(n);
  }

  std::vector<float> h_;
  std::vector<float> c_;
  std::vector<float> x_;
  std::vector<float> lstm_scratch_;
  std::vector<float> composite_;
  std::vector<float> s_tilde_;
  std::vector<float> logits_;
  std::vector<float> attn_scores_;
};

}  // namespace ncl::comaid
