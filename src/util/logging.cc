#include "util/logging.h"

#include <atomic>

namespace ncl {
namespace internal {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

void SetLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace ncl
