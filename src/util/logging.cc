#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/env.h"

namespace ncl {

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

std::atomic<LogLevel>& Threshold() {
  static std::atomic<LogLevel> threshold{
      ParseLogLevel(GetEnvString("NCL_LOG_LEVEL"), LogLevel::kInfo)};
  return threshold;
}

/// "2026-08-06 12:34:56.789" local time.
std::string FormatTimestamp() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm_buf;
  localtime_r(&seconds, &tm_buf);
  char out[48];
  std::snprintf(out, sizeof(out), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(millis));
  return out;
}

}  // namespace

LogLevel ParseLogLevel(std::string_view text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2")
    return LogLevel::kWarning;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "fatal" || lower == "4") return LogLevel::kFatal;
  return fallback;
}

LogLevel GetLogThreshold() {
  return Threshold().load(std::memory_order_relaxed);
}

void SetLogThreshold(LogLevel level) {
  Threshold().store(level, std::memory_order_relaxed);
}

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  std::string prefix;
  prefix.reserve(64);
  prefix += "[";
  prefix += LevelName(level);
  prefix += " ";
  prefix += FormatTimestamp();
  prefix += " T";
  prefix += std::to_string(ThisThreadId());
  prefix += " ";
  prefix += file;
  prefix += ":";
  prefix += std::to_string(line);
  prefix += "] ";
  return prefix;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << FormatLogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::string line = stream_.str();
    line.push_back('\n');
    // One write(2) per line: stderr is unbuffered and POSIX writes to the
    // same file description are not interleaved with each other, so
    // concurrent scoring threads emit whole lines. (A short write can only
    // occur on e.g. a full pipe; the loop finishes the line then.)
    const char* data = line.data();
    size_t remaining = line.size();
    while (remaining > 0) {
      ssize_t written = ::write(STDERR_FILENO, data, remaining);
      if (written <= 0) break;
      data += written;
      remaining -= static_cast<size_t>(written);
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace ncl
