// Wall-clock stopwatch used by the timing experiments (Figs. 11 and 12).

#pragma once

#include <chrono>

namespace ncl {

/// \brief Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ncl
