// Arrow/RocksDB-style Status and Result<T> error handling.
//
// Library code in this repository does not throw exceptions across module
// boundaries; fallible operations return Status (for void results) or
// Result<T> (for value-producing operations). Invariant violations that
// indicate programmer error use NCL_CHECK / NCL_DCHECK from logging.h.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ncl {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kNotImplemented,
  kInternal,
  kUnavailable,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Inverse of StatusCodeToString: parse a code name back to the enum.
///
/// Round-trips every StatusCode (`StatusCodeFromString(StatusCodeToString(c))
/// == c`); unknown names return nullopt. The ncl::net wire error envelope
/// transports codes by name through this pair, so an old binary decoding a
/// frame from a newer one degrades to nullopt instead of aliasing a
/// renumbered enum value.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the OK
/// case (no allocation) and carry a message only when non-OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// IOError describing a failed file operation: "<action> <path>: <errno
  /// message>". Reads `errno`, so call immediately after the failing stream
  /// or syscall operation.
  static Status IOErrorFromErrno(std::string_view action, std::string_view path);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Access the value only after checking ok();
/// ValueOrDie aborts (via NCL_CHECK semantics) on error.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace ncl

/// Propagate a non-OK Status out of the enclosing function.
#define NCL_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::ncl::Status _ncl_status = (expr);           \
    if (!_ncl_status.ok()) return _ncl_status;    \
  } while (0)

#define NCL_CONCAT_IMPL(a, b) a##b
#define NCL_CONCAT(a, b) NCL_CONCAT_IMPL(a, b)

/// Evaluate a Result<T>-producing expression; on success bind the value to
/// `lhs`, on failure return the error Status from the enclosing function.
#define NCL_ASSIGN_OR_RETURN(lhs, expr)                               \
  auto NCL_CONCAT(_ncl_result_, __LINE__) = (expr);                   \
  if (!NCL_CONCAT(_ncl_result_, __LINE__).ok())                       \
    return NCL_CONCAT(_ncl_result_, __LINE__).status();               \
  lhs = std::move(NCL_CONCAT(_ncl_result_, __LINE__)).value()
