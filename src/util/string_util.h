// Small string helpers shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ncl {

/// \brief ASCII-lowercase a copy of the input.
std::string ToLower(std::string_view s);

/// \brief Split on any run of the given delimiter characters; empty pieces
/// are dropped.
std::vector<std::string> Split(std::string_view s, std::string_view delims = " \t");

/// \brief Split on a single character, keeping empty fields (TSV semantics).
std::vector<std::string> SplitKeepEmpty(std::string_view s, char delim);

/// \brief Join pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep = " ");

/// \brief Strip leading and trailing whitespace.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief True if every character is an ASCII digit (and s is non-empty).
bool IsNumber(std::string_view s);

/// \brief True if the string contains at least one ASCII digit.
bool ContainsDigit(std::string_view s);

/// \brief Render a double with the given precision (fixed notation).
std::string FormatDouble(double value, int precision = 3);

}  // namespace ncl
