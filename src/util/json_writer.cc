#include "util/json_writer.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace ncl {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::BeforeItem() {
  if (stack_.empty()) {
    NCL_CHECK(out_.empty()) << "JsonWriter: only one top-level value allowed";
    return;
  }
  if (stack_.back() == Scope::kObject) {
    NCL_CHECK(key_pending_) << "JsonWriter: value inside an object needs Key()";
  } else if (has_items_.back()) {
    out_.push_back(',');
  }
}

void JsonWriter::AfterValue() {
  if (!stack_.empty()) has_items_.back() = true;
  key_pending_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeItem();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  key_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  NCL_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "JsonWriter: unbalanced EndObject";
  NCL_CHECK(!key_pending_) << "JsonWriter: dangling Key() at EndObject";
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeItem();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  key_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  NCL_CHECK(!stack_.empty() && stack_.back() == Scope::kArray)
      << "JsonWriter: unbalanced EndArray";
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  NCL_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "JsonWriter: Key() outside an object";
  NCL_CHECK(!key_pending_) << "JsonWriter: consecutive Key() calls";
  if (has_items_.back()) out_.push_back(',');
  AppendEscaped(out_, key);
  out_.push_back(':');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeItem();
  AppendEscaped(out_, value);
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeItem();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  }
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeItem();
  out_ += std::to_string(value);
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeItem();
  out_ += std::to_string(value);
  AfterValue();
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeItem();
  out_ += value ? "true" : "false";
  AfterValue();
  return *this;
}

const std::string& JsonWriter::str() const {
  NCL_CHECK(stack_.empty()) << "JsonWriter: document has unclosed containers";
  return out_;
}

Status JsonWriter::WriteFile(const std::string& path) const {
  errno = 0;
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IOErrorFromErrno("cannot open for writing", path);
  errno = 0;
  file << str() << "\n";
  file.flush();
  if (!file) return Status::IOErrorFromErrno("failed writing", path);
  return Status::OK();
}

}  // namespace ncl
