#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace ncl {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) pieces.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::vector<std::string> SplitKeepEmpty(std::string_view s, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t end = s.find(delim, start);
    if (end == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool IsNumber(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ContainsDigit(std::string_view s) {
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace ncl
