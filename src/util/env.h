// Environment-variable helpers for scaling experiment harnesses.

#pragma once

#include <cstdlib>
#include <string>

namespace ncl {

/// \brief Integer environment variable, or `fallback` when unset/unparsable.
inline int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int64_t>(value);
}

/// \brief String environment variable, or `fallback` when unset.
inline std::string GetEnvString(const char* name, std::string fallback = "") {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return std::string(raw);
}

/// \brief True when the NCL_BENCH_FULL environment variable is set to a
/// non-zero value; benches then run the paper-scale sweeps instead of the
/// quick defaults.
inline bool BenchFullMode() { return GetEnvInt("NCL_BENCH_FULL", 0) != 0; }

}  // namespace ncl
