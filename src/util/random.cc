#include "util/random.h"

#include <cmath>
#include <numeric>

namespace ncl {

size_t Rng::Weighted(const std::vector<double>& weights) {
  NCL_DCHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return Index(weights.size());
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  NCL_CHECK(n > 0) << "AliasSampler needs at least one weight";
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  NCL_CHECK(total > 0.0) << "AliasSampler needs a positive total weight";

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's alias method: partition scaled probabilities into small/large.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t l : large) prob_[l] = 1.0;
  for (size_t s : small) prob_[s] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t column = rng.Index(prob_.size());
  return rng.Uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace ncl
