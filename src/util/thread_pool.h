// Fixed-size thread pool with a ParallelFor helper.
//
// The paper's online linker evaluates the encode-decode probability of the
// k candidate concepts on ten threads (Appendix B.1); ThreadPool provides
// that parallelism for Phase II scoring and for batched training.
//
// Observability: every pool publishes to the global metrics registry —
// `ncl.pool.queue_depth` (gauge), `ncl.pool.queue_wait_us` and
// `ncl.pool.task_run_us` (histograms), `ncl.pool.tasks` (counter) — and
// each executed task runs under an `ncl.pool.task` trace span.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ncl {

/// \brief A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Run fn(i) for every i in [0, count), distributing across the pool and
  /// blocking until all iterations finish. fn must be thread-safe. If any
  /// iteration throws, the remaining unstarted iterations are cancelled,
  /// every participating task is still awaited, and the first exception is
  /// rethrown on the calling thread.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  /// A queued task plus its enqueue time (for the queue-wait histogram).
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ncl
