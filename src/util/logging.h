// Minimal logging and check macros in the Arrow style.
//
// NCL_CHECK(cond)   — always-on invariant; aborts with a message on failure.
// NCL_DCHECK(cond)  — debug-only invariant (compiled out when NDEBUG).
// NCL_LOG(INFO)     — streaming log line to stderr.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ncl {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level actually emitted; settable at runtime for quiet benches.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

/// \brief One log statement: accumulates a message, emits it on destruction.
/// Fatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ncl

#define NCL_LOG_INTERNAL(level) \
  ::ncl::internal::LogMessage(::ncl::internal::LogLevel::level, __FILE__, __LINE__)

#define NCL_LOG(severity) NCL_LOG_INTERNAL(k##severity)

#define NCL_CHECK(condition)                                        \
  if (!(condition))                                                 \
  NCL_LOG(Fatal) << "Check failed: " #condition " "

#define NCL_CHECK_OK(expr)                                          \
  do {                                                              \
    ::ncl::Status _ncl_st = (expr);                                 \
    if (!_ncl_st.ok())                                              \
      NCL_LOG(Fatal) << "Operation failed: " << _ncl_st.ToString(); \
  } while (0)

#ifdef NDEBUG
#define NCL_DCHECK(condition) \
  while (false) NCL_LOG(Fatal)
#else
#define NCL_DCHECK(condition) NCL_CHECK(condition)
#endif
