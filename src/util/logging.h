// Minimal logging and check macros in the Arrow style.
//
// NCL_CHECK(cond)   — always-on invariant; aborts with a message on failure.
// NCL_DCHECK(cond)  — debug-only invariant (compiled out when NDEBUG).
// NCL_LOG(INFO)     — streaming log line to stderr.
//
// Lines are prefixed with level, wall-clock timestamp, a small per-process
// thread id and file:line, and each line is emitted as ONE write(2) so
// concurrent scoring threads cannot interleave partial lines. The minimum
// emitted level starts from the NCL_LOG_LEVEL environment variable
// (debug|info|warning|error|fatal, or 0-4; default info) and is settable at
// runtime.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ncl {

/// \brief Small dense id of the calling thread (1, 2, … in first-use order).
/// Shared by the log prefix and the trace exporter so lines and spans from
/// one thread carry the same id.
uint32_t ThisThreadId();

namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Parse "debug" / "info" / "warning" ("warn") / "error" / "fatal" or a
/// digit 0-4 (case-insensitive); `fallback` on anything else.
LogLevel ParseLogLevel(std::string_view text, LogLevel fallback);

/// Minimum level actually emitted; initialised from NCL_LOG_LEVEL at first
/// use and settable at runtime for quiet benches.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

/// The "[LEVEL timestamp Tn file:line] " prefix (exposed for tests).
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

/// \brief One log statement: accumulates a message, emits it on destruction.
/// Fatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ncl

#define NCL_LOG_INTERNAL(level) \
  ::ncl::internal::LogMessage(::ncl::internal::LogLevel::level, __FILE__, __LINE__)

#define NCL_LOG(severity) NCL_LOG_INTERNAL(k##severity)

#define NCL_CHECK(condition)                                        \
  if (!(condition))                                                 \
  NCL_LOG(Fatal) << "Check failed: " #condition " "

#define NCL_CHECK_OK(expr)                                          \
  do {                                                              \
    ::ncl::Status _ncl_st = (expr);                                 \
    if (!_ncl_st.ok())                                              \
      NCL_LOG(Fatal) << "Operation failed: " << _ncl_st.ToString(); \
  } while (0)

#ifdef NDEBUG
#define NCL_DCHECK(condition) \
  while (false) NCL_LOG(Fatal)
#else
#define NCL_DCHECK(condition) NCL_CHECK(condition)
#endif
