// Deterministic, fast pseudo-random number generation.
//
// All stochastic components in this repository (parameter initialisation,
// data synthesis, negative sampling, shuffling) draw from ncl::Rng so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded via SplitMix64, following the reference
// implementations of Blackman & Vigna.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace ncl {

/// \brief SplitMix64 step; used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  /// Re-seed the generator deterministically from a single value.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(Uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    NCL_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform index in [0, n) as size_t.
  size_t Index(size_t n) { return static_cast<size_t>(UniformInt(n)); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box–Muller.
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = Uniform();
    double u2 = Uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Gaussian with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element. Requires non-empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    NCL_DCHECK(!v.empty());
    return v[Index(v.size())];
  }

  /// Sample an index proportional to the given non-negative weights.
  /// Falls back to uniform if all weights are zero.
  size_t Weighted(const std::vector<double>& weights);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Precomputed alias-method sampler for a fixed discrete distribution.
///
/// Used by negative sampling in pretraining, where millions of draws are
/// taken from the (smoothed) unigram distribution: O(1) per draw.
class AliasSampler {
 public:
  /// Build from non-negative weights; at least one must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draw one index according to the distribution.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace ncl
