#include "util/table_writer.h"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "util/string_util.h"

namespace ncl {

TableWriter::TableWriter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label, const std::vector<double>& values,
                         int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TableWriter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < header_.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < header_.size()) line += "  ";
    }
    // Right-trim padding on the final column.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TableWriter::Print() const { std::cout << Render() << std::endl; }

Status TableWriter::WriteTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << Join(header_, "\t") << "\n";
  for (const auto& row : rows_) out << Join(row, "\t") << "\n";
  return out.good() ? Status::OK() : Status::IOError("write failed for " + path);
}

}  // namespace ncl
