#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ncl {

namespace {

/// Registry handles resolved once per process (all pools share the metrics:
/// serving runs one pool, and per-pool naming would leak pool lifetimes).
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Histogram* queue_wait_us;
  obs::Histogram* task_run_us;
  obs::Counter* tasks;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return PoolMetrics{registry.GetGauge("ncl.pool.queue_depth"),
                       registry.GetHistogram("ncl.pool.queue_wait_us"),
                       registry.GetHistogram("ncl.pool.task_run_us"),
                       registry.GetCounter("ncl.pool.tasks")};
  }();
  return metrics;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(QueuedTask{std::move(packaged), std::chrono::steady_clock::now()});
  }
  GetPoolMetrics().queue_depth->Increment();
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Shared atomic cursor: workers steal indices until exhausted. The calling
  // thread participates too, so the pool is never idle-blocked on itself.
  //
  // Exception safety: `body` captures `fn` (and this frame's state) by
  // reference, so the calling frame must never unwind while worker copies
  // are still running. The body therefore swallows exceptions into the
  // shared state — guaranteeing `f.get()` below never throws and every
  // future is awaited — and the first exception is rethrown only after all
  // participants finished. A thrown iteration also cancels the remaining
  // unstarted iterations.
  struct SharedState {
    std::atomic<size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<SharedState>();
  auto body = [state, count, &fn] {
    while (!state->cancelled.load(std::memory_order_relaxed)) {
      size_t i = state->cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
        }
        state->cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };
  size_t helpers = std::min(workers_.size(), count - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) futures.push_back(Submit(body));
  body();
  for (auto& f : futures) f.get();
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask queued;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      queued = std::move(tasks_.front());
      tasks_.pop();
    }
    const PoolMetrics& metrics = GetPoolMetrics();
    metrics.queue_depth->Decrement();
    metrics.queue_wait_us->RecordMicros(MicrosSince(queued.enqueued));
    const auto run_start = std::chrono::steady_clock::now();
    {
      NCL_TRACE_SPAN("ncl.pool.task");
      queued.task();
    }
    metrics.task_run_us->RecordMicros(MicrosSince(run_start));
    metrics.tasks->Increment();
  }
}

}  // namespace ncl
