#include "util/status.h"

#include <cerrno>
#include <cstring>

namespace ncl {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  // The table mirrors StatusCodeToString; the round trip over every code is
  // pinned by status_test.
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition,
      StatusCode::kIOError,
      StatusCode::kNotImplemented,
      StatusCode::kInternal,
      StatusCode::kUnavailable,
      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (StatusCodeToString(code) == name) return code;
  }
  return std::nullopt;
}

Status Status::IOErrorFromErrno(std::string_view action,
                                std::string_view path) {
  const int err = errno;
  std::string message(action);
  message += " ";
  message += path;
  message += ": ";
  // ofstream failures do not always set errno; name the ambiguity rather
  // than inventing a cause.
  message += err != 0 ? std::strerror(err) : "unknown I/O error (errno not set)";
  if (err != 0) {
    message += " (errno " + std::to_string(err) + ")";
  }
  return Status(StatusCode::kIOError, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ncl
