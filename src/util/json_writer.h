// Minimal streaming JSON writer for machine-readable bench output.
//
// The benches emit BENCH_*.json files so the perf trajectory can be tracked
// across PRs without scraping the human-readable tables. The writer covers
// exactly what those files need — nested objects/arrays, string/number/bool
// values, escaping — with comma placement handled automatically.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ncl {

/// \brief Streaming JSON document builder.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("qps").Value(123.4).Key("rows").BeginArray();
///   w.Value(1).Value(2).EndArray().EndObject();
///   w.WriteFile("BENCH_x.json");
///
/// Misuse (e.g. a value with no pending key inside an object) trips an
/// NCL_CHECK. Non-finite doubles are emitted as null (JSON has no NaN/inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by a value or container.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) { return Value(std::string_view(value)); }
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(bool value);

  /// The document so far. Complete (all containers closed) documents only.
  const std::string& str() const;

  /// Write the (complete) document to `path`, newline-terminated.
  Status WriteFile(const std::string& path) const;

 private:
  enum class Scope { kObject, kArray };

  /// Emit the separating comma (if needed) before a value/key in the current
  /// scope.
  void BeforeItem();
  /// Note that a value was emitted in the current scope.
  void AfterValue();

  std::string out_;
  std::vector<Scope> stack_;
  /// Whether the current scope already holds at least one item.
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace ncl
