// Aligned text-table rendering used by the experiment harnesses in bench/
// to print paper-style result rows, with optional TSV export.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace ncl {

/// \brief Collects rows of string cells and renders them as an aligned
/// monospace table (and optionally as TSV for downstream plotting).
class TableWriter {
 public:
  /// \param title caption printed above the table.
  /// \param header column names.
  TableWriter(std::string title, std::vector<std::string> header);

  /// Append one row; it is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision into a row.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Render as an aligned table with a separator under the header.
  std::string Render() const;

  /// Render and print to stdout.
  void Print() const;

  /// Write the table as TSV to `path`.
  Status WriteTsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ncl
