#include "net/wire.h"

#include <cstdio>
#include <cstring>

namespace ncl::net {

namespace {

// --- Little-endian primitive writers. The buffer is a std::string used as
// a byte sink; memcpy keeps the writes alignment-safe and the explicit
// byte order keeps frames portable across hosts.

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU16(std::string* out, uint16_t v) {
  char bytes[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out->append(bytes, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 8);
}

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a frame body. Each Read* returns false once
/// the body is exhausted; the caller converts that to InvalidArgument.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (data_.size() - pos_ < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (data_.size() - pos_ < 2) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(Byte(i)) << (8 * i);
    *v = out;
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (data_.size() - pos_ < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(Byte(i)) << (8 * i);
    *v = out;
    pos_ += 8;
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t raw;
    if (!ReadU32(&raw)) return false;
    *v = static_cast<int32_t>(raw);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadString(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    v->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

  /// Bytes left to read — the bound for validating wire element counts
  /// before they size an allocation.
  size_t remaining() const { return data_.size() - pos_; }

 private:
  uint32_t Byte(int i) const { return static_cast<uint8_t>(data_[pos_ + i]); }

  std::string_view data_;
  size_t pos_ = 0;
};

std::string ToHex(uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04x", v);
  return buf;
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated or malformed ") + what +
                                 " body");
}

/// The error envelope: code name + message. Encoding the *name* (not the
/// enum value) is what makes the envelope survive enum renumbering; the
/// round trip is StatusCodeToString -> StatusCodeFromString.
void PutStatusEnvelope(std::string* out, const Status& status) {
  PutString(out, std::string(StatusCodeToString(status.code())));
  PutString(out, status.message());
}

bool ReadStatusEnvelope(Reader* reader, Status* status) {
  std::string code_name;
  std::string message;
  if (!reader->ReadString(&code_name) || !reader->ReadString(&message)) {
    return false;
  }
  std::optional<StatusCode> code = StatusCodeFromString(code_name);
  if (code.has_value()) {
    *status = Status(*code, std::move(message));
  } else {
    // A name this build does not know (newer peer): preserve everything we
    // can rather than dropping the diagnosis on the floor.
    *status = Status::Internal("unknown wire status code '" + code_name +
                               "': " + message);
  }
  return true;
}

std::string MakeFrame(MessageType type, uint64_t correlation_id,
                      std::string_view body) {
  std::string out;
  out.reserve(kHeaderSize + body.size());
  PutU16(&out, kMagic);
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU64(&out, correlation_id);
  out.append(body);
  return out;
}

}  // namespace

std::string EncodeLinkRequest(uint64_t correlation_id, const LinkRequestMsg& msg) {
  std::string body;
  PutU64(&body, msg.deadline_us);
  PutString(&body, msg.ontology);
  PutU32(&body, static_cast<uint32_t>(msg.tokens.size()));
  for (const std::string& token : msg.tokens) PutString(&body, token);
  return MakeFrame(MessageType::kLinkRequest, correlation_id, body);
}

std::string EncodeLinkResponse(uint64_t correlation_id, const LinkResponseMsg& msg) {
  std::string body;
  PutStatusEnvelope(&body, msg.status);
  PutU64(&body, msg.snapshot_version);
  PutU64(&body, msg.server_request_id);
  PutF64(&body, msg.timings.queue_wait_us);
  PutF64(&body, msg.timings.batch_form_us);
  PutF64(&body, msg.timings.candgen_us);
  PutF64(&body, msg.timings.ed_us);
  PutF64(&body, msg.timings.rank_us);
  PutF64(&body, msg.timings.total_us);
  PutU32(&body, static_cast<uint32_t>(msg.candidates.size()));
  for (const linking::ScoredCandidate& c : msg.candidates) {
    PutI32(&body, c.concept_id);
    PutF64(&body, c.log_prob);
    PutF64(&body, c.loss);
  }
  return MakeFrame(MessageType::kLinkResponse, correlation_id, body);
}

std::string EncodeHealthRequest(uint64_t correlation_id) {
  return MakeFrame(MessageType::kHealthRequest, correlation_id, {});
}

std::string EncodeHealthResponse(uint64_t correlation_id,
                                 const HealthResponseMsg& msg) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(msg.state));
  PutU64(&body, msg.snapshot_version);
  return MakeFrame(MessageType::kHealthResponse, correlation_id, body);
}

std::string EncodeDrainRequest(uint64_t correlation_id) {
  return MakeFrame(MessageType::kDrainRequest, correlation_id, {});
}

std::string EncodeDrainResponse(uint64_t correlation_id, const Status& status) {
  std::string body;
  PutStatusEnvelope(&body, status);
  return MakeFrame(MessageType::kDrainResponse, correlation_id, body);
}

std::string EncodeStatsRequest(uint64_t correlation_id) {
  return MakeFrame(MessageType::kStatsRequest, correlation_id, {});
}

std::string EncodeStatsResponse(uint64_t correlation_id,
                                const StatsResponseMsg& msg) {
  std::string body;
  PutU64(&body, msg.stats.admitted);
  PutU64(&body, msg.stats.rejected);
  PutU64(&body, msg.stats.shed);
  PutU64(&body, msg.stats.deadline_exceeded);
  PutU64(&body, msg.stats.completed);
  PutU64(&body, msg.stats.batches);
  PutU64(&body, msg.stats.queue_depth);
  PutU64(&body, msg.stats.max_queue_depth);
  return MakeFrame(MessageType::kStatsResponse, correlation_id, body);
}

std::string EncodeErrorResponse(uint64_t correlation_id, const Status& status) {
  std::string body;
  PutStatusEnvelope(&body, status);
  return MakeFrame(MessageType::kError, correlation_id, body);
}

Result<FrameHeader> DecodeHeader(std::string_view bytes,
                                 uint32_t max_body_bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("frame header needs " +
                                   std::to_string(kHeaderSize) + " bytes, got " +
                                   std::to_string(bytes.size()));
  }
  Reader reader(bytes.substr(0, kHeaderSize));
  uint16_t magic;
  uint8_t version;
  uint8_t type;
  FrameHeader header;
  reader.ReadU16(&magic);
  reader.ReadU8(&version);
  reader.ReadU8(&type);
  reader.ReadU32(&header.body_size);
  reader.ReadU64(&header.correlation_id);
  if (magic != kMagic) {
    return Status::InvalidArgument("bad frame magic " + ToHex(magic) +
                                   " (not an ncl::net peer?)");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version) +
        " (this build speaks " + std::to_string(kProtocolVersion) + ")");
  }
  if (header.body_size > max_body_bytes) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(header.body_size) +
        " bytes exceeds the " + std::to_string(max_body_bytes) + "-byte cap");
  }
  header.version = version;
  header.type = static_cast<MessageType>(type);
  return header;
}

Result<LinkRequestMsg> DecodeLinkRequest(std::string_view body) {
  Reader reader(body);
  LinkRequestMsg msg;
  uint32_t count;
  if (!reader.ReadU64(&msg.deadline_us) || !reader.ReadString(&msg.ontology) ||
      !reader.ReadU32(&count)) {
    return Truncated("LinkRequest");
  }
  // The deadline is attacker-controlled: clamp it here, at the trust
  // boundary, so no downstream arithmetic ever sees a value that could
  // overflow a steady_clock time_point.
  if (msg.deadline_us > kMaxDeadlineUs) msg.deadline_us = kMaxDeadlineUs;
  // The count is attacker-controlled: bound it by the bytes actually present
  // (each token carries at least a 4-byte length prefix) before it sizes an
  // allocation, or a 28-byte frame could demand a multi-GB reserve.
  if (count > reader.remaining() / 4) return Truncated("LinkRequest");
  msg.tokens.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string token;
    if (!reader.ReadString(&token)) return Truncated("LinkRequest");
    msg.tokens.push_back(std::move(token));
  }
  if (!reader.exhausted()) return Truncated("LinkRequest");
  return msg;
}

Result<LinkResponseMsg> DecodeLinkResponse(std::string_view body) {
  Reader reader(body);
  LinkResponseMsg msg;
  uint32_t count;
  if (!ReadStatusEnvelope(&reader, &msg.status) ||
      !reader.ReadU64(&msg.snapshot_version) ||
      !reader.ReadU64(&msg.server_request_id) ||
      !reader.ReadF64(&msg.timings.queue_wait_us) ||
      !reader.ReadF64(&msg.timings.batch_form_us) ||
      !reader.ReadF64(&msg.timings.candgen_us) ||
      !reader.ReadF64(&msg.timings.ed_us) ||
      !reader.ReadF64(&msg.timings.rank_us) ||
      !reader.ReadF64(&msg.timings.total_us) || !reader.ReadU32(&count)) {
    return Truncated("LinkResponse");
  }
  // Same wire-count validation as DecodeLinkRequest: a candidate is exactly
  // 20 bytes (i32 + two f64), so any count beyond remaining/20 is malformed.
  if (count > reader.remaining() / 20) return Truncated("LinkResponse");
  msg.candidates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    linking::ScoredCandidate candidate;
    if (!reader.ReadI32(&candidate.concept_id) ||
        !reader.ReadF64(&candidate.log_prob) || !reader.ReadF64(&candidate.loss)) {
      return Truncated("LinkResponse");
    }
    msg.candidates.push_back(candidate);
  }
  if (!reader.exhausted()) return Truncated("LinkResponse");
  return msg;
}

Result<HealthResponseMsg> DecodeHealthResponse(std::string_view body) {
  Reader reader(body);
  HealthResponseMsg msg;
  uint8_t state;
  if (!reader.ReadU8(&state) || !reader.ReadU64(&msg.snapshot_version) ||
      !reader.exhausted()) {
    return Truncated("HealthResponse");
  }
  if (state > static_cast<uint8_t>(ServerState::kDraining)) {
    return Status::InvalidArgument("unknown server state " + std::to_string(state));
  }
  msg.state = static_cast<ServerState>(state);
  return msg;
}

Result<StatsResponseMsg> DecodeStatsResponse(std::string_view body) {
  Reader reader(body);
  StatsResponseMsg msg;
  uint64_t queue_depth;
  uint64_t max_queue_depth;
  if (!reader.ReadU64(&msg.stats.admitted) || !reader.ReadU64(&msg.stats.rejected) ||
      !reader.ReadU64(&msg.stats.shed) ||
      !reader.ReadU64(&msg.stats.deadline_exceeded) ||
      !reader.ReadU64(&msg.stats.completed) || !reader.ReadU64(&msg.stats.batches) ||
      !reader.ReadU64(&queue_depth) || !reader.ReadU64(&max_queue_depth) ||
      !reader.exhausted()) {
    return Truncated("StatsResponse");
  }
  msg.stats.queue_depth = static_cast<size_t>(queue_depth);
  msg.stats.max_queue_depth = static_cast<size_t>(max_queue_depth);
  return msg;
}

Status DecodeStatusEnvelope(std::string_view body, Status* decoded) {
  Reader reader(body);
  if (!ReadStatusEnvelope(&reader, decoded) || !reader.exhausted()) {
    return Truncated("status envelope");
  }
  return Status::OK();
}

bool FrameDecoder::Next(Frame* frame, Status* status) {
  if (!error_.ok()) {
    *status = error_;
    return false;
  }
  *status = Status::OK();
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so a long-lived connection does not grow its read buffer forever.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  std::string_view pending(buffer_.data() + consumed_, buffer_.size() - consumed_);
  if (pending.size() < kHeaderSize) return false;
  Result<FrameHeader> header = DecodeHeader(pending, max_body_bytes_);
  if (!header.ok()) {
    error_ = header.status();
    *status = error_;
    return false;
  }
  if (pending.size() < kHeaderSize + header->body_size) return false;
  frame->header = *header;
  frame->body.assign(pending.substr(kHeaderSize, header->body_size));
  consumed_ += kHeaderSize + header->body_size;
  return true;
}

}  // namespace ncl::net
