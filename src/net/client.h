// net::Client — blocking and pipelined client for the ncl::net protocol.
//
// One client owns one connection. The sync entry point Link() sends a
// request and waits for its response, reconnecting and retrying with
// exponential backoff when the transport or the service says Unavailable
// (replica down, connection reset, drained mid-flight) up to
// ClientConfig::max_retries extra attempts — the retryable set is exactly
// Unavailable; DeadlineExceeded, ResourceExhausted and scoring errors are
// returned to the caller untouched, Status code intact.
//
// A non-zero deadline_us is an *end-to-end budget*: it bounds the caller's
// total wall-clock across every attempt and backoff, each retry resends
// only the remaining microseconds (so a replica never holds a request
// longer than the caller will wait), and once the budget is spent Link
// returns DeadlineExceeded instead of burning further attempts. Backoff
// sleeps happen outside the client mutex, so a retrying caller does not
// stall concurrent users of a shared client.
//
// Pipelining: SendLink() fires a request without waiting and returns its
// correlation id; ReceiveLink() blocks for the next response on the wire.
// Responses come back in server completion order, so a pipelined caller
// matches them by the returned id. Pipelined sends do not retry — a
// transport error surfaces on the call and the connection is reset, losing
// the in-flight window (the caller re-sends what it still cares about).
//
// Thread safety: calls are serialised internally with a mutex, so a client
// *may* be shared, but each call holds the connection for its full round
// trip — concurrent throughput needs one client (one connection) per
// thread, which is how serve-eval and bench_net drive the fleet.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace ncl::net {

struct ClientConfig {
  int connect_timeout_ms = 2000;
  int send_timeout_ms = 5000;
  int recv_timeout_ms = 10000;
  /// Extra attempts after the first when the failure is Unavailable.
  int max_retries = 2;
  /// First retry backoff; doubles per attempt (10, 20, 40, ...).
  int initial_backoff_ms = 10;
  uint32_t max_body_bytes = kDefaultMaxBodyBytes;
};

/// \brief One connection to a net::Server (or Router) speaking net/wire.h.
class Client {
 public:
  /// Construct and connect. Fails Unavailable when the peer is down.
  static Result<std::unique_ptr<Client>> Connect(const Endpoint& endpoint,
                                                 ClientConfig config = {});

  /// Sync link: send, wait, retry on Unavailable per the config. A
  /// non-zero `deadline_us` is the end-to-end budget described above: the
  /// *remaining* budget travels on the wire each attempt and is enforced by
  /// the replica's admission control (DeadlineExceeded comes back in the
  /// envelope); zero means no deadline and unbudgeted retries. `ontology`
  /// selects the tenant model on a multi-tenant replica ("" = default).
  Result<LinkResponseMsg> Link(const std::vector<std::string>& tokens,
                               uint64_t deadline_us = 0,
                               const std::string& ontology = {});

  /// Pipelined send: returns the correlation id to match in ReceiveLink.
  /// No retry; a transport error resets the connection.
  Result<uint64_t> SendLink(const std::vector<std::string>& tokens,
                            uint64_t deadline_us = 0,
                            const std::string& ontology = {});

  /// Next link response on the wire (server completion order). `*correlation_id`
  /// receives the id of the request it answers.
  Result<LinkResponseMsg> ReceiveLink(uint64_t* correlation_id);

  Result<HealthResponseMsg> Health();
  Result<StatsResponseMsg> Stats();
  /// Ask the replica to drain (see Server docs). OK means acknowledged.
  Status Drain();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Client(Endpoint endpoint, ClientConfig config)
      : endpoint_(std::move(endpoint)), config_(config) {}

  Status EnsureConnectedLocked();
  void DisconnectLocked() { fd_ = Fd(); }
  Status SendFrameLocked(const std::string& frame);
  /// Read one complete frame (header + body) off the connection.
  Result<Frame> ReadFrameLocked();
  /// Send `frame`, read one frame, check it answers `correlation_id` with
  /// `expected` (kError envelopes are unwrapped into the returned Status).
  Result<Frame> RoundTripLocked(const std::string& frame,
                                MessageType expected, uint64_t correlation_id);

  const Endpoint endpoint_;
  const ClientConfig config_;
  std::mutex mutex_;
  Fd fd_;
  uint64_t next_correlation_id_ = 1;
};

}  // namespace ncl::net
