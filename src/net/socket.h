// Thin POSIX socket helpers for ncl::net: RAII fds, TCP and Unix-domain
// listeners/connectors with timeouts, and endpoint specs.
//
// Endpoints are spelled as strings so CLI flags, configs and logs agree:
//
//     tcp:<host>:<port>     e.g. tcp:127.0.0.1:7070  (port 0 = ephemeral)
//     unix:<path>           e.g. unix:/tmp/ncl.sock
//
// All helpers return Status/Result instead of throwing; EINTR is retried
// internally.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace ncl::net {

/// \brief Owning file descriptor (closes on destruction, move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void Close();

 private:
  int fd_ = -1;
};

/// \brief A parsed listen/connect address.
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;    ///< kTcp
  uint16_t port = 0;   ///< kTcp (0 = ephemeral when listening)
  std::string path;    ///< kUnix

  /// Parse "tcp:host:port" or "unix:/path".
  static Result<Endpoint> Parse(std::string_view spec);

  /// The canonical spec string ("tcp:127.0.0.1:7070", "unix:/tmp/a.sock").
  std::string ToString() const;
};

/// Bind + listen on `endpoint`. For TCP the socket gets SO_REUSEADDR; for
/// UDS a stale socket file at `path` is unlinked first. `backlog` is the
/// listen(2) backlog.
Result<Fd> Listen(const Endpoint& endpoint, int backlog = 64);

/// The endpoint a listener is actually bound to — resolves an ephemeral
/// TCP port (tcp:host:0) to the kernel-assigned one.
Result<Endpoint> LocalEndpoint(const Fd& listener, const Endpoint& requested);

/// Connect with a timeout (non-blocking connect + poll). The returned fd is
/// back in blocking mode.
Result<Fd> Connect(const Endpoint& endpoint, int timeout_ms);

/// Write all of `data`, retrying partial writes; `timeout_ms` bounds the
/// total wall time (<= 0 = no bound). Fails Unavailable when the peer has
/// closed, DeadlineExceeded on timeout.
Status SendAll(int fd, std::string_view data, int timeout_ms);

/// Read exactly `size` bytes into `out` (appended). Fails Unavailable on
/// EOF, DeadlineExceeded on timeout.
Status RecvExactly(int fd, size_t size, std::string* out, int timeout_ms);

/// Mark `fd` non-blocking (used by the server's event loop).
Status SetNonBlocking(int fd);

}  // namespace ncl::net
