#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

namespace ncl::net {

namespace {

using Clock = std::chrono::steady_clock;

Status ErrnoStatus(const char* action, const std::string& detail) {
  const int err = errno;
  return Status::IOError(std::string(action) + " " + detail + ": " +
                         std::strerror(err) + " (errno " + std::to_string(err) +
                         ")");
}

/// Remaining milliseconds of a deadline started `timeout_ms` ago at `start`
/// (<= 0 timeout = unbounded poll, returned as -1).
int RemainingMs(Clock::time_point start, int timeout_ms) {
  if (timeout_ms <= 0) return -1;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start)
          .count();
  const long long remaining = timeout_ms - elapsed;
  return remaining > 0 ? static_cast<int>(remaining) : 0;
}

Result<sockaddr_un> MakeUnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long (" +
                                   std::to_string(path.size()) + " >= " +
                                   std::to_string(sizeof(addr.sun_path)) +
                                   "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Result<sockaddr_in> MakeTcpAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Dotted-quad only: the fleet topology names replicas by address, and
  // avoiding getaddrinfo keeps connect timeouts honest.
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    // Exactly one close, EINTR included: on Linux the descriptor is released
    // even when close is interrupted, so a retry could close an unrelated fd
    // that another thread was just handed the same number for.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Endpoint> Endpoint::Parse(std::string_view spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = std::string(spec.substr(5));
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" +
                                     std::string(spec) + "'");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string_view rest = spec.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("expected tcp:<host>:<port>, got '" +
                                     std::string(spec) + "'");
    }
    endpoint.kind = Kind::kTcp;
    endpoint.host = std::string(rest.substr(0, colon));
    int port = 0;
    for (char c : rest.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("non-numeric port in '" +
                                       std::string(spec) + "'");
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("port out of range in '" +
                                       std::string(spec) + "'");
      }
    }
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
  }
  return Status::InvalidArgument(
      "endpoint must start with tcp: or unix:, got '" + std::string(spec) + "'");
}

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<Fd> Listen(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    NCL_ASSIGN_OR_RETURN(sockaddr_un addr, MakeUnixAddr(endpoint.path));
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return ErrnoStatus("socket for", endpoint.ToString());
    ::unlink(endpoint.path.c_str());  // stale socket from a previous run
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return ErrnoStatus("bind", endpoint.ToString());
    }
    if (::listen(fd.get(), backlog) != 0) {
      return ErrnoStatus("listen on", endpoint.ToString());
    }
    return fd;
  }
  NCL_ASSIGN_OR_RETURN(sockaddr_in addr, MakeTcpAddr(endpoint.host, endpoint.port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket for", endpoint.ToString());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind", endpoint.ToString());
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen on", endpoint.ToString());
  }
  return fd;
}

Result<Endpoint> LocalEndpoint(const Fd& listener, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUnix) return requested;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname on", requested.ToString());
  }
  Endpoint bound = requested;
  bound.port = ntohs(addr.sin_port);
  return bound;
}

Result<Fd> Connect(const Endpoint& endpoint, int timeout_ms) {
  Fd fd;
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    NCL_ASSIGN_OR_RETURN(sockaddr_un addr, MakeUnixAddr(endpoint.path));
    fd = Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  } else {
    NCL_ASSIGN_OR_RETURN(sockaddr_in addr,
                         MakeTcpAddr(endpoint.host, endpoint.port));
    fd = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  }
  if (!fd.valid()) return ErrnoStatus("socket for", endpoint.ToString());
  NCL_RETURN_NOT_OK(SetNonBlocking(fd.get()));

  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&storage), addr_len);
  if (rc != 0 && errno != EINPROGRESS) {
    // Connection refused &co. map to Unavailable: the peer is down, which
    // is the retryable condition clients and the router key on.
    const int err = errno;
    return Status::Unavailable("connect " + endpoint.ToString() + ": " +
                               std::strerror(err));
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      return Status::DeadlineExceeded("connect " + endpoint.ToString() +
                                      " timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (ready < 0) return ErrnoStatus("poll connecting to", endpoint.ToString());
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      return Status::Unavailable("connect " + endpoint.ToString() + ": " +
                                 std::strerror(err));
    }
  }
  // Back to blocking: callers use poll-bounded SendAll/RecvExactly.
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl on", endpoint.ToString());
  }
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Status SendAll(int fd, std::string_view data, int timeout_ms) {
  const auto start = Clock::now();
  size_t sent = 0;
  while (sent < data.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, RemainingMs(start, timeout_ms));
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      return Status::DeadlineExceeded("send timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (ready < 0) return ErrnoStatus("poll for", "send");
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection during send");
      }
      return ErrnoStatus("send on", "fd " + std::to_string(fd));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvExactly(int fd, size_t size, std::string* out, int timeout_ms) {
  const auto start = Clock::now();
  const size_t base = out->size();
  out->resize(base + size);
  size_t received = 0;
  while (received < size) {
    pollfd pfd{fd, POLLIN, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, RemainingMs(start, timeout_ms));
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      out->resize(base + received);
      return Status::DeadlineExceeded("recv timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (ready < 0) {
      out->resize(base + received);
      return ErrnoStatus("poll for", "recv");
    }
    const ssize_t n =
        ::recv(fd, out->data() + base + received, size - received, 0);
    if (n == 0) {
      out->resize(base + received);
      return Status::Unavailable("peer closed the connection during recv");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      out->resize(base + received);
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset during recv");
      }
      return ErrnoStatus("recv on", "fd " + std::to_string(fd));
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl O_NONBLOCK on", "fd " + std::to_string(fd));
  }
  return Status::OK();
}

}  // namespace ncl::net
