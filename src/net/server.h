// net::Server — the transport that turns a LinkingService into a network
// replica.
//
// One poll(2) event loop owns the listener and every connection: it accepts,
// reads, decodes frames (net/wire.h) and writes buffered responses; it never
// scores. Link requests are submitted to the LinkingService via SubmitLink —
// the wire deadline_us field becomes RequestOptions::deadline, so admission
// control, micro-batching and deadline enforcement are exactly the
// in-process semantics — and a completion thread waits on the returned
// futures in FIFO order (the dispatcher resolves them in near-FIFO order, so
// head-of-line waiting is cheap), encodes LinkResponse frames and hands the
// bytes back to the event loop through a wakeup pipe. Health, Stats and
// Drain frames are answered inline on the loop.
//
// Backpressure: the admission queue's kBlock policy blocks SubmitLink on the
// event-loop thread, which stops the server reading new frames until the
// queue has space — TCP/UDS flow control then pushes back on every client.
// That is intentional (it is the wire analogue of a blocked in-process
// submitter); deployments that prefer fast failure configure kReject or
// kShedOldest and the error envelope carries ResourceExhausted/Unavailable
// to the client with the Status code intact.
//
// Drain: a kDrainRequest is acknowledged immediately, then a helper thread
// runs LinkingService::Drain() — queued requests complete and their
// responses flush before WaitForDrain() returns, while health flips to
// kDraining so a router stops routing here. New link requests after a drain
// fail with Unavailable (from SubmitLink). This is the per-replica half of
// zero-downtime rollout: drain, restart with the new model (the
// SnapshotRegistry publish flow), health flips back to kServing, the router
// re-adds the replica.
//
// Observability (`ncl.net.*`): connections / active_connections,
// bytes_in / bytes_out, requests / responses, decode_errors, in_flight,
// drain_requests.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "serve/linking_service.h"
#include "serve/model_snapshot.h"
#include "util/status.h"

namespace ncl::net {

struct ServerConfig {
  Endpoint endpoint;
  /// Frames announcing a larger body are rejected and the connection closed.
  uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  /// listen(2) backlog.
  int backlog = 64;
};

/// Point-in-time transport counters (per instance; the same events also
/// feed the global `ncl.net.*` metrics).
struct ServerStats {
  uint64_t connections_accepted = 0;
  size_t active_connections = 0;
  uint64_t requests = 0;        ///< link requests decoded
  uint64_t responses = 0;       ///< link responses written out
  uint64_t decode_errors = 0;   ///< malformed frames / bodies
  size_t in_flight = 0;         ///< submitted, response not yet encoded
  uint64_t drain_requests = 0;
};

/// \brief Serves one LinkingService over TCP or a Unix-domain socket.
///
/// The service may host one model or a whole TenantRegistry of them — the
/// wire request's ontology field rides into RequestOptions::ontology
/// unchanged, so one replica serves every tenant the registry holds.
class Server {
 public:
  /// `service` and `registry` must outlive the server. The registry is only
  /// read for the health response's snapshot version (the newest live
  /// version across tenants).
  Server(serve::LinkingService* service, serve::TenantRegistry* registry,
         ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the event loop. Fails if the endpoint is bad or
  /// already bound; idempotence is not supported (one Start per instance).
  Status Start();

  /// Stop accepting and reading, let in-flight futures resolve, close every
  /// connection, join the threads. Idempotent. Does not stop the service.
  void Stop();

  /// Block until a wire Drain has been requested *and* the service finished
  /// draining *and* every in-flight response has been flushed to its socket.
  /// serve-net uses this to exit cleanly after a remote drain.
  void WaitForDrain();

  /// True once a kDrainRequest has been seen (health reports kDraining).
  bool drain_requested() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// The endpoint actually bound (ephemeral TCP ports resolved). Valid
  /// after a successful Start.
  const Endpoint& bound_endpoint() const { return bound_endpoint_; }

  ServerStats stats() const;

 private:
  struct Connection {
    Fd fd;
    uint64_t id = 0;
    FrameDecoder decoder;
    std::string outbox;      ///< encoded responses awaiting POLLOUT
    size_t outbox_sent = 0;  ///< prefix of outbox already written
    bool closing = false;    ///< close once the outbox flushes
    explicit Connection(uint32_t max_body) : decoder(max_body) {}
  };

  /// One submitted link request whose response is still pending.
  struct InFlight {
    uint64_t connection_id = 0;
    uint64_t correlation_id = 0;
    std::future<serve::LinkResult> future;
  };

  void EventLoop();
  void CompletionLoop();
  void DrainLoop();
  void HandleFrame(Connection* conn, Frame frame);
  void QueueResponse(Connection* conn, std::string frame_bytes);
  void Wakeup();

  serve::LinkingService* service_;
  serve::TenantRegistry* registry_;
  const ServerConfig config_;
  Endpoint bound_endpoint_;

  Fd listener_;
  Fd wakeup_read_;
  Fd wakeup_write_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::mutex stop_mutex_;  ///< serialises Stop/destructor
  bool stopped_ = false;   ///< guarded by stop_mutex_

  /// Responses encoded off-loop (completion thread), spliced into
  /// connection outboxes by the event loop after a wakeup.
  std::mutex pending_mutex_;
  std::vector<std::pair<uint64_t, std::string>> pending_writes_;

  /// FIFO of futures the completion thread resolves.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::deque<InFlight> inflight_;

  /// Drain state machine: requested (wire) -> drained (service) -> flushed
  /// (all responses on the wire).
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<bool> drain_requested_{false};
  bool drained_ = false;
  bool flushed_ = false;

  /// Per-instance counters (event loop thread + completion thread).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> drain_requests_{0};

  std::thread loop_thread_;
  std::thread completion_thread_;
  std::thread drain_thread_;

  /// Event-loop-private connection table (id -> connection). Ids are
  /// monotonic so a recycled fd never aliases a stale pending write.
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
};

}  // namespace ncl::net
