#include "net/server.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ncl::net {

namespace {

/// Registry handles for `ncl.net.*`, resolved once.
struct NetMetrics {
  obs::Counter* connections;
  obs::Gauge* active_connections;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* requests;
  obs::Counter* responses;
  obs::Counter* decode_errors;
  obs::Gauge* in_flight;
  obs::Counter* drain_requests;
};

const NetMetrics& GetNetMetrics() {
  static const NetMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return NetMetrics{registry.GetCounter("ncl.net.connections"),
                      registry.GetGauge("ncl.net.active_connections"),
                      registry.GetCounter("ncl.net.bytes_in"),
                      registry.GetCounter("ncl.net.bytes_out"),
                      registry.GetCounter("ncl.net.requests"),
                      registry.GetCounter("ncl.net.responses"),
                      registry.GetCounter("ncl.net.decode_errors"),
                      registry.GetGauge("ncl.net.in_flight"),
                      registry.GetCounter("ncl.net.drain_requests")};
  }();
  return metrics;
}

}  // namespace

Server::Server(serve::LinkingService* service, serve::TenantRegistry* registry,
               ServerConfig config)
    : service_(service), registry_(registry), config_(std::move(config)) {
  NCL_CHECK(service_ != nullptr);
  NCL_CHECK(registry_ != nullptr);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  NCL_CHECK(!started_.load()) << "Server::Start called twice";
  NCL_ASSIGN_OR_RETURN(listener_, Listen(config_.endpoint, config_.backlog));
  NCL_ASSIGN_OR_RETURN(bound_endpoint_,
                       LocalEndpoint(listener_, config_.endpoint));
  NCL_RETURN_NOT_OK(SetNonBlocking(listener_.get()));

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wakeup_read_ = Fd(pipe_fds[0]);
  wakeup_write_ = Fd(pipe_fds[1]);
  NCL_RETURN_NOT_OK(SetNonBlocking(wakeup_read_.get()));
  NCL_RETURN_NOT_OK(SetNonBlocking(wakeup_write_.get()));

  started_.store(true);
  loop_thread_ = std::thread([this] { EventLoop(); });
  completion_thread_ = std::thread([this] { CompletionLoop(); });
  drain_thread_ = std::thread([this] { DrainLoop(); });
  NCL_LOG(Info) << "net::Server listening on " << bound_endpoint_.ToString();
  return Status::OK();
}

void Server::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_.load() || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  Wakeup();
  inflight_cv_.notify_all();
  drain_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (completion_thread_.joinable()) completion_thread_.join();
  if (drain_thread_.joinable()) drain_thread_.join();
  if (config_.endpoint.kind == Endpoint::Kind::kUnix) {
    ::unlink(config_.endpoint.path.c_str());
  }
}

void Server::Wakeup() {
  if (!wakeup_write_.valid()) return;
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wakeup_write_.get(), &byte, 1);
}

void Server::WaitForDrain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return flushed_ || stopping_.load(); });
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  stats.active_connections = active_connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  stats.drain_requests = drain_requests_.load(std::memory_order_relaxed);
  return stats;
}

void Server::QueueResponse(Connection* conn, std::string frame_bytes) {
  conn->outbox.append(frame_bytes);
}

void Server::HandleFrame(Connection* conn, Frame frame) {
  const NetMetrics& metrics = GetNetMetrics();
  const uint64_t correlation_id = frame.header.correlation_id;
  switch (frame.header.type) {
    case MessageType::kLinkRequest: {
      Result<LinkRequestMsg> request = DecodeLinkRequest(frame.body);
      if (!request.ok()) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        metrics.decode_errors->Increment();
        QueueResponse(conn,
                      EncodeErrorResponse(correlation_id, request.status()));
        return;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      metrics.requests->Increment();
      serve::RequestOptions options;
      // deadline_us was clamped to kMaxDeadlineUs at decode, so this
      // conversion can never feed the service an overflowing duration.
      options.deadline = std::chrono::microseconds(request->deadline_us);
      options.ontology = std::move(request->ontology);
      // May block under a full kBlock admission queue — intentional: the
      // loop stops reading and the kernel back-pressures every client.
      std::future<serve::LinkResult> future =
          service_->SubmitLink(std::move(request->tokens), options);
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      metrics.in_flight->Increment();
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.push_back(
            InFlight{conn->id, correlation_id, std::move(future)});
      }
      inflight_cv_.notify_one();
      return;
    }
    case MessageType::kHealthRequest: {
      HealthResponseMsg health;
      health.state = drain_requested() ? ServerState::kDraining
                                       : ServerState::kServing;
      health.snapshot_version = registry_->max_version();
      QueueResponse(conn, EncodeHealthResponse(correlation_id, health));
      return;
    }
    case MessageType::kStatsRequest: {
      StatsResponseMsg stats_msg;
      stats_msg.stats = service_->stats();
      QueueResponse(conn, EncodeStatsResponse(correlation_id, stats_msg));
      return;
    }
    case MessageType::kDrainRequest: {
      drain_requests_.fetch_add(1, std::memory_order_relaxed);
      metrics.drain_requests->Increment();
      // Acknowledge first, drain on the helper thread: Drain() blocks until
      // the queue empties, which must not stall the loop that has to flush
      // the very responses Drain waits on.
      drain_requested_.store(true, std::memory_order_release);
      drain_cv_.notify_all();
      QueueResponse(conn, EncodeDrainResponse(correlation_id, Status::OK()));
      NCL_LOG(Info) << "net::Server drain requested over the wire";
      return;
    }
    default: {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      metrics.decode_errors->Increment();
      QueueResponse(
          conn,
          EncodeErrorResponse(
              correlation_id,
              Status::InvalidArgument(
                  "unexpected message type " +
                  std::to_string(static_cast<int>(frame.header.type)))));
      return;
    }
  }
}

void Server::EventLoop() {
  const NetMetrics& metrics = GetNetMetrics();
  std::vector<pollfd> pollfds;
  std::vector<uint64_t> poll_conn_ids;  // parallel to pollfds, 0 = not a conn
  char read_buf[64 * 1024];

  while (!stopping_.load(std::memory_order_acquire)) {
    pollfds.clear();
    poll_conn_ids.clear();
    pollfds.push_back(pollfd{wakeup_read_.get(), POLLIN, 0});
    poll_conn_ids.push_back(0);
    // Accepting continues through a drain: fresh connections must still be
    // able to ask Health (that is how a router's probe sees kDraining —
    // probes reconnect each sweep) and get a proper Unavailable for link
    // requests from SubmitLink, instead of hanging in the backlog.
    pollfds.push_back(pollfd{listener_.get(), POLLIN, 0});
    poll_conn_ids.push_back(0);
    for (auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (conn->outbox_sent < conn->outbox.size()) events |= POLLOUT;
      pollfds.push_back(pollfd{conn->fd.get(), events, 0});
      poll_conn_ids.push_back(id);
    }

    int ready = ::poll(pollfds.data(), pollfds.size(), /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      NCL_LOG(Error) << "net::Server poll: " << std::strerror(errno);
      break;
    }

    // Splice responses encoded by the completion thread into outboxes.
    {
      std::vector<std::pair<uint64_t, std::string>> writes;
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        writes.swap(pending_writes_);
      }
      for (auto& [conn_id, bytes] : writes) {
        auto it = connections_.find(conn_id);
        if (it != connections_.end()) QueueResponse(it->second.get(), bytes);
        // else: the client went away before its response was ready — drop.
      }
    }

    for (size_t i = 0; i < pollfds.size(); ++i) {
      const pollfd& pfd = pollfds[i];
      if (pfd.revents == 0) continue;
      if (pfd.fd == wakeup_read_.get()) {
        char drain[256];
        while (::read(wakeup_read_.get(), drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (pfd.fd == listener_.get() && poll_conn_ids[i] == 0) {
        for (;;) {
          int client = ::accept(listener_.get(), nullptr, nullptr);
          if (client < 0) break;  // EAGAIN or transient error
          Status status = SetNonBlocking(client);
          if (!status.ok()) {
            NCL_LOG(Warning) << "net::Server accept setup: " << status.ToString();
            ::close(client);
            continue;
          }
          auto conn = std::make_unique<Connection>(config_.max_body_bytes);
          conn->fd = Fd(client);
          conn->id = next_connection_id_++;
          connections_.emplace(conn->id, std::move(conn));
          connections_accepted_.fetch_add(1, std::memory_order_relaxed);
          metrics.connections->Increment();
          active_connections_.store(connections_.size(),
                                    std::memory_order_relaxed);
          metrics.active_connections->Set(
              static_cast<double>(connections_.size()));
        }
        continue;
      }

      auto it = connections_.find(poll_conn_ids[i]);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      bool close_conn = false;

      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Flush what we can if only the read side hung up; a hard error
        // closes immediately below.
        conn->closing = true;
        if (pfd.revents & (POLLERR | POLLNVAL)) close_conn = true;
      }

      if (!close_conn && (pfd.revents & POLLIN)) {
        for (;;) {
          ssize_t n = ::recv(conn->fd.get(), read_buf, sizeof(read_buf), 0);
          if (n > 0) {
            metrics.bytes_in->Increment(static_cast<uint64_t>(n));
            conn->decoder.Append(std::string_view(read_buf, n));
            continue;
          }
          if (n == 0) {
            conn->closing = true;  // peer sent FIN; flush pending responses
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          close_conn = true;
          break;
        }
        Frame frame;
        Status status;
        while (conn->decoder.Next(&frame, &status)) {
          HandleFrame(conn, std::move(frame));
        }
        if (!status.ok()) {
          // Framing is unrecoverable on a byte stream: log, count, close.
          decode_errors_.fetch_add(1, std::memory_order_relaxed);
          metrics.decode_errors->Increment();
          NCL_LOG(Warning) << "net::Server closing connection " << conn->id
                           << ": " << status.ToString();
          close_conn = true;
        }
      }

      if (!close_conn && (conn->outbox_sent < conn->outbox.size())) {
        for (;;) {
          const size_t remaining = conn->outbox.size() - conn->outbox_sent;
          if (remaining == 0) break;
          ssize_t n = ::send(conn->fd.get(), conn->outbox.data() + conn->outbox_sent,
                             remaining, MSG_NOSIGNAL);
          if (n > 0) {
            metrics.bytes_out->Increment(static_cast<uint64_t>(n));
            conn->outbox_sent += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
            break;
          }
          close_conn = true;  // EPIPE / reset
          break;
        }
        if (conn->outbox_sent == conn->outbox.size()) {
          conn->outbox.clear();
          conn->outbox_sent = 0;
        }
      }

      if (close_conn ||
          (conn->closing && conn->outbox_sent >= conn->outbox.size())) {
        connections_.erase(it);
        active_connections_.store(connections_.size(), std::memory_order_relaxed);
        metrics.active_connections->Set(static_cast<double>(connections_.size()));
      }
    }

    // Drain epilogue: once the service is drained, every in-flight response
    // is encoded and every outbox is empty, the fleet owner may stop us.
    if (drain_requested()) {
      bool all_flushed = in_flight_.load(std::memory_order_acquire) == 0;
      if (all_flushed) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        all_flushed = pending_writes_.empty();
      }
      if (all_flushed) {
        for (auto& [id, conn] : connections_) {
          if (conn->outbox_sent < conn->outbox.size()) {
            all_flushed = false;
            break;
          }
        }
      }
      if (all_flushed) {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        if (drained_ && !flushed_) {
          flushed_ = true;
          drain_cv_.notify_all();
        }
      }
    }
  }
  connections_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
  GetNetMetrics().active_connections->Set(0.0);
}

void Server::CompletionLoop() {
  const NetMetrics& metrics = GetNetMetrics();
  for (;;) {
    InFlight entry;
    {
      std::unique_lock<std::mutex> lock(inflight_mutex_);
      inflight_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !inflight_.empty();
      });
      if (inflight_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      entry = std::move(inflight_.front());
      inflight_.pop_front();
    }
    // Futures always resolve (LinkingService contract), even across
    // Drain/Shutdown, so this wait is bounded by service progress.
    serve::LinkResult result = entry.future.get();
    LinkResponseMsg response;
    response.status = std::move(result.status);
    response.snapshot_version = result.snapshot_version;
    response.server_request_id = result.request_id;
    response.timings = result.timings;
    response.candidates = std::move(result.candidates);
    std::string bytes = EncodeLinkResponse(entry.correlation_id, response);
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_writes_.emplace_back(entry.connection_id, std::move(bytes));
    }
    responses_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses->Increment();
    in_flight_.fetch_sub(1, std::memory_order_release);
    metrics.in_flight->Add(-1.0);
    Wakeup();
  }
}

void Server::DrainLoop() {
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] {
      return drain_requested_.load(std::memory_order_acquire) ||
             stopping_.load(std::memory_order_acquire);
    });
    if (!drain_requested_.load(std::memory_order_acquire)) return;
  }
  // Off-loop: completes everything queued; the completion + event loops
  // flush the responses while we wait here.
  service_->Drain();
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_ = true;
  }
  drain_cv_.notify_all();
  Wakeup();  // let the event loop run its drain epilogue promptly
  NCL_LOG(Info) << "net::Server service drained";
}

}  // namespace ncl::net
