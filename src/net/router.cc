#include "net/router.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <poll.h>
#include <sys/socket.h>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ncl::net {

namespace {

struct RouterMetrics {
  obs::Counter* connections;
  obs::Counter* requests;
  obs::Counter* retried;
  obs::Counter* failed;
  obs::Gauge* healthy_backends;
};

const RouterMetrics& GetRouterMetrics() {
  static const RouterMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return RouterMetrics{registry.GetCounter("ncl.net.router.connections"),
                         registry.GetCounter("ncl.net.router.requests"),
                         registry.GetCounter("ncl.net.router.retried"),
                         registry.GetCounter("ncl.net.router.failed"),
                         registry.GetGauge("ncl.net.router.healthy_backends")};
  }();
  return metrics;
}

}  // namespace

uint64_t RouteHash(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t RendezvousScore(uint64_t key_hash, uint64_t backend_hash) {
  // splitmix64 finisher over the key hash and the backend's *identity*
  // hash. Mixing the config index here instead was the bug that made
  // routing depend on backend list order: two routers with permuted
  // configs disagreed on every key, and deleting entry 0 reshuffled the
  // whole keyspace instead of just the deleted backend's share.
  uint64_t z = key_hash ^ (backend_hash * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string RouteKey(std::string_view ontology,
                     const std::vector<std::string>& tokens) {
  std::string key;
  key += ontology;
  key += '\x1e';  // record separator: tenant vs. token space
  for (const std::string& token : tokens) {
    key += token;
    key += '\x1f';  // unit separator: ("ab","c") != ("a","bc")
  }
  return key;
}

Router::Router(RouterConfig config) : config_(std::move(config)) {
  for (const Endpoint& endpoint : config_.backends) {
    backends_.push_back(std::make_unique<Backend>(endpoint));
  }
}

Router::~Router() { Stop(); }

Status Router::Start() {
  NCL_CHECK(!started_.load()) << "Router::Start called twice";
  if (backends_.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  NCL_ASSIGN_OR_RETURN(listener_, Listen(config_.listen, config_.backlog));
  NCL_ASSIGN_OR_RETURN(bound_endpoint_, LocalEndpoint(listener_, config_.listen));
  NCL_RETURN_NOT_OK(SetNonBlocking(listener_.get()));
  started_.store(true);
  // Synchronous first sweep: route from the first request onward.
  ProbeAllBackends();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  health_thread_ = std::thread([this] { HealthLoop(); });
  NCL_LOG(Info) << "net::Router listening on " << bound_endpoint_.ToString()
                << " with " << backends_.size() << " backends";
  return Status::OK();
}

void Router::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_.load() || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  health_cv_.notify_all();
  {
    // Unblock handler threads waiting in recv on idle client connections.
    // Only live entries are here: a handler deregisters before its Fd
    // closes, so no shutdown ever lands on a recycled fd number.
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    for (auto& [id, entry] : handlers_) ::shutdown(entry.fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  listener_ = Fd();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    for (auto& [id, entry] : handlers_) handlers.push_back(std::move(entry.thread));
    handlers_.clear();
    handlers.insert(handlers.end(),
                    std::make_move_iterator(finished_handlers_.begin()),
                    std::make_move_iterator(finished_handlers_.end()));
    finished_handlers_.clear();
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (config_.listen.kind == Endpoint::Kind::kUnix) {
    ::unlink(config_.listen.path.c_str());
  }
}

RouterStats Router::stats() const {
  RouterStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.retried = retried_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  for (const auto& backend : backends_) {
    BackendStatus status;
    status.endpoint = backend->endpoint;
    status.healthy = backend->healthy.load(std::memory_order_relaxed);
    status.draining = backend->draining.load(std::memory_order_relaxed);
    status.snapshot_version =
        backend->snapshot_version.load(std::memory_order_relaxed);
    status.routed = backend->routed.load(std::memory_order_relaxed);
    status.failures = backend->failures.load(std::memory_order_relaxed);
    stats.backends.push_back(std::move(status));
  }
  return stats;
}

void Router::MarkBackendDown(size_t index) {
  Backend& backend = *backends_[index];
  backend.failures.fetch_add(1, std::memory_order_relaxed);
  if (backend.healthy.exchange(false, std::memory_order_acq_rel)) {
    NCL_LOG(Warning) << "net::Router backend " << backend.endpoint.ToString()
                     << " removed from rotation (forward failure)";
  }
}

std::vector<size_t> Router::RouteOrder(std::string_view key) const {
  const uint64_t key_hash = RouteHash(key);
  struct Scored {
    uint64_t score;
    size_t index;
    bool routable;
  };
  std::vector<Scored> scored;
  scored.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    const Backend& backend = *backends_[i];
    const bool routable = backend.healthy.load(std::memory_order_acquire) &&
                          !backend.draining.load(std::memory_order_acquire);
    scored.push_back(
        Scored{RendezvousScore(key_hash, backend.address_hash), i, routable});
  }
  // Routable backends first (by descending rendezvous score), the rest as a
  // last resort in the same order — a fleet whose probes have all failed
  // still *tries* rather than instantly erroring.
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.routable != b.routable) return a.routable;
    return a.score > b.score;
  });
  std::vector<size_t> order;
  order.reserve(scored.size());
  for (const Scored& s : scored) order.push_back(s.index);
  return order;
}

Client* Router::BackendClient(size_t index,
                              std::vector<std::unique_ptr<Client>>* cache) {
  if (cache->size() < backends_.size()) cache->resize(backends_.size());
  if ((*cache)[index] == nullptr) {
    ClientConfig client_config;
    client_config.connect_timeout_ms = config_.connect_timeout_ms;
    client_config.send_timeout_ms = config_.io_timeout_ms;
    client_config.recv_timeout_ms = config_.io_timeout_ms;
    // The router is the retry layer: failover beats hammering a dead
    // backend with backoff.
    client_config.max_retries = 0;
    client_config.max_body_bytes = config_.max_body_bytes;
    Result<std::unique_ptr<Client>> client =
        Client::Connect(backends_[index]->endpoint, client_config);
    if (!client.ok()) return nullptr;
    (*cache)[index] = std::move(*client);
  }
  return (*cache)[index].get();
}

LinkResponseMsg Router::ForwardLink(
    const LinkRequestMsg& request,
    std::vector<std::unique_ptr<Client>>* backends) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  GetRouterMetrics().requests->Increment();
  const std::vector<size_t> order =
      RouteOrder(RouteKey(request.ontology, request.tokens));
  Status last_error = Status::Unavailable("no backends configured");
  bool needed_retry = false;
  for (size_t index : order) {
    Client* client = BackendClient(index, backends);
    if (client == nullptr) {
      MarkBackendDown(index);
      last_error = Status::Unavailable(
          "connect " + backends_[index]->endpoint.ToString() + " failed");
      needed_retry = true;
      continue;
    }
    Result<LinkResponseMsg> response =
        client->Link(request.tokens, request.deadline_us, request.ontology);
    if (response.ok() &&
        response->status.code() != StatusCode::kUnavailable) {
      // Includes non-OK outcomes like DeadlineExceeded or
      // ResourceExhausted: the backend answered, forward its verdict.
      backends_[index]->routed.fetch_add(1, std::memory_order_relaxed);
      if (needed_retry) {
        retried_.fetch_add(1, std::memory_order_relaxed);
        GetRouterMetrics().retried->Increment();
      }
      return std::move(*response);
    }
    last_error = response.ok() ? response->status : response.status();
    MarkBackendDown(index);
    // A dead cached connection reconnects lazily next time; drop it now so
    // a revived backend is not stuck behind a poisoned fd.
    (*backends)[index].reset();
    needed_retry = true;
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  GetRouterMetrics().failed->Increment();
  LinkResponseMsg response;
  response.status = Status::Unavailable(
      "no live backend (" + std::to_string(order.size()) + " tried): " +
      last_error.ToString());
  return response;
}

void Router::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.get(), POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) {
      NCL_LOG(Error) << "net::Router accept poll: " << std::strerror(errno);
      return;
    }
    if (ready <= 0) continue;
    for (;;) {
      int client = ::accept(listener_.get(), nullptr, nullptr);
      if (client < 0) break;
      connections_.fetch_add(1, std::memory_order_relaxed);
      GetRouterMetrics().connections->Increment();
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(client);
        return;
      }
      ReapFinishedHandlersLocked();
      const uint64_t id = next_handler_id_++;
      HandlerEntry& entry = handlers_[id];
      entry.fd = client;
      // Safe to start under the lock: the handler touches handlers_ only on
      // exit, and blocks on this mutex until the entry is fully formed.
      entry.thread =
          std::thread([this, id, client] { HandleConnection(id, Fd(client)); });
    }
  }
}

void Router::HandleConnection(uint64_t handler_id, Fd fd) {
  // Handler-local backend connections: no lock spans network I/O.
  std::vector<std::unique_ptr<Client>> backend_clients;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Block indefinitely for the next request (Stop shuts the fd down to
    // wake us); bound the body read once a header has committed.
    std::string header_bytes;
    Status status = RecvExactly(fd.get(), kHeaderSize, &header_bytes,
                                /*timeout_ms=*/0);
    if (!status.ok()) break;  // peer gone or shutdown
    Result<FrameHeader> header = DecodeHeader(header_bytes, config_.max_body_bytes);
    if (!header.ok()) {
      NCL_LOG(Warning) << "net::Router closing connection: "
                       << header.status().ToString();
      break;
    }
    std::string body;
    if (header->body_size > 0) {
      status = RecvExactly(fd.get(), header->body_size, &body,
                           config_.io_timeout_ms);
      if (!status.ok()) break;
    }
    const uint64_t correlation_id = header->correlation_id;
    std::string reply;
    switch (header->type) {
      case MessageType::kLinkRequest: {
        Result<LinkRequestMsg> request = DecodeLinkRequest(body);
        if (!request.ok()) {
          reply = EncodeErrorResponse(correlation_id, request.status());
          break;
        }
        reply = EncodeLinkResponse(correlation_id,
                                   ForwardLink(*request, &backend_clients));
        break;
      }
      case MessageType::kHealthRequest: {
        // Aggregate: serving while at least one backend is routable; the
        // version reported is the newest live snapshot in the fleet.
        HealthResponseMsg health;
        health.state = ServerState::kDraining;
        for (const auto& backend : backends_) {
          if (backend->healthy.load(std::memory_order_acquire) &&
              !backend->draining.load(std::memory_order_acquire)) {
            health.state = ServerState::kServing;
            health.snapshot_version = std::max(
                health.snapshot_version,
                backend->snapshot_version.load(std::memory_order_relaxed));
          }
        }
        reply = EncodeHealthResponse(correlation_id, health);
        break;
      }
      case MessageType::kStatsRequest: {
        StatsResponseMsg sum;
        for (size_t i = 0; i < backends_.size(); ++i) {
          Client* client = BackendClient(i, &backend_clients);
          if (client == nullptr) continue;
          Result<StatsResponseMsg> stats = client->Stats();
          if (!stats.ok()) continue;
          sum.stats.admitted += stats->stats.admitted;
          sum.stats.rejected += stats->stats.rejected;
          sum.stats.shed += stats->stats.shed;
          sum.stats.deadline_exceeded += stats->stats.deadline_exceeded;
          sum.stats.completed += stats->stats.completed;
          sum.stats.batches += stats->stats.batches;
          sum.stats.queue_depth += stats->stats.queue_depth;
          sum.stats.max_queue_depth =
              std::max(sum.stats.max_queue_depth, stats->stats.max_queue_depth);
        }
        reply = EncodeStatsResponse(correlation_id, sum);
        break;
      }
      case MessageType::kDrainRequest: {
        reply = EncodeDrainResponse(correlation_id, DrainAll());
        break;
      }
      default:
        reply = EncodeErrorResponse(
            correlation_id,
            Status::InvalidArgument(
                "unexpected message type " +
                std::to_string(static_cast<int>(header->type))));
        break;
    }
    status = SendAll(fd.get(), reply, config_.io_timeout_ms);
    if (!status.ok()) break;
  }
  // Deregister before `fd` closes (it outlives this block): once the entry
  // is gone, Stop cannot shutdown(2) whatever the kernel recycles this fd
  // number into. Under Stop, the entry may already have been claimed.
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  auto it = handlers_.find(handler_id);
  if (it != handlers_.end()) {
    finished_handlers_.push_back(std::move(it->second.thread));
    handlers_.erase(it);
  }
}

void Router::ReapFinishedHandlersLocked() {
  for (std::thread& t : finished_handlers_) {
    if (t.joinable()) t.join();
  }
  finished_handlers_.clear();
}

void Router::ProbeAllBackends() {
  // Probe connections are ephemeral: a health check is rare (per interval)
  // and a fresh connect *is* part of what "healthy" means.
  size_t healthy = 0;
  for (auto& backend : backends_) {
    ClientConfig probe_config;
    probe_config.connect_timeout_ms = config_.connect_timeout_ms;
    probe_config.send_timeout_ms = config_.connect_timeout_ms;
    probe_config.recv_timeout_ms = config_.connect_timeout_ms;
    probe_config.max_retries = 0;
    Result<std::unique_ptr<Client>> client =
        Client::Connect(backend->endpoint, probe_config);
    Result<HealthResponseMsg> health =
        client.ok() ? (*client)->Health()
                    : Result<HealthResponseMsg>(client.status());
    if (health.ok()) {
      const bool draining = health->state == ServerState::kDraining;
      backend->draining.store(draining, std::memory_order_release);
      backend->snapshot_version.store(health->snapshot_version,
                                      std::memory_order_relaxed);
      if (!backend->healthy.exchange(true, std::memory_order_acq_rel) &&
          !draining) {
        NCL_LOG(Info) << "net::Router backend " << backend->endpoint.ToString()
                      << " joined rotation (snapshot v"
                      << health->snapshot_version << ")";
      }
      if (!draining) ++healthy;
    } else {
      backend->failures.fetch_add(1, std::memory_order_relaxed);
      if (backend->healthy.exchange(false, std::memory_order_acq_rel)) {
        NCL_LOG(Warning) << "net::Router backend "
                         << backend->endpoint.ToString()
                         << " removed from rotation: "
                         << health.status().ToString();
      }
    }
  }
  GetRouterMetrics().healthy_backends->Set(static_cast<double>(healthy));
}

void Router::HealthLoop() {
  std::unique_lock<std::mutex> lock(health_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    health_cv_.wait_for(lock, std::chrono::milliseconds(config_.health_interval_ms),
                        [this] { return stopping_.load(std::memory_order_acquire); });
    if (stopping_.load(std::memory_order_acquire)) return;
    lock.unlock();
    ProbeAllBackends();
    lock.lock();
  }
}

Status Router::DrainBackend(size_t index) {
  if (index >= backends_.size()) {
    return Status::OutOfRange("backend index " + std::to_string(index) +
                              " out of range (fleet has " +
                              std::to_string(backends_.size()) + ")");
  }
  ClientConfig drain_config;
  drain_config.connect_timeout_ms = config_.connect_timeout_ms;
  drain_config.send_timeout_ms = config_.io_timeout_ms;
  drain_config.recv_timeout_ms = config_.io_timeout_ms;
  drain_config.max_retries = 0;
  NCL_ASSIGN_OR_RETURN(std::unique_ptr<Client> client,
                       Client::Connect(backends_[index]->endpoint, drain_config));
  NCL_RETURN_NOT_OK(client->Drain());
  // Take it out of rotation now; the probe will confirm via kDraining.
  backends_[index]->draining.store(true, std::memory_order_release);
  NCL_LOG(Info) << "net::Router draining backend "
                << backends_[index]->endpoint.ToString();
  return Status::OK();
}

Status Router::DrainAll() {
  Status first_error;
  for (size_t i = 0; i < backends_.size(); ++i) {
    Status status = DrainBackend(i);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

}  // namespace ncl::net
