// net::Router — a tiny front process for a fleet of net::Server replicas.
//
// The router listens on one endpoint and holds client connections to N
// backend replicas. Each link request is routed by *rendezvous (highest-
// random-weight) hashing* of its (ontology, query) key over the currently
// routable backends: score(key, backend) is computed per backend and the
// maximum wins, so a backend joining or leaving only remaps the keys that
// hashed to it — the consistent-routing property that keeps per-replica
// encoding caches warm across membership churn. The per-backend mix uses a
// hash of the backend's *address*, never its position in the config, so
// two routers given the same fleet in any order route identically and
// editing the backend list cannot reshuffle unrelated keys.
//
// Health: a probe thread sends kHealthRequest to every backend each
// `health_interval_ms`. A probe failure (or a kDraining state) takes the
// backend out of rotation; a succeeding probe on a kServing backend puts it
// back — removal and re-add are fully automatic. Forwarding failures
// *also* mark the backend down immediately (faster than the probe), and the
// request is retried on the next backend in rendezvous order, so a replica
// killed mid-load costs in-flight requests at most an internal retry, not a
// client-visible error. Only when no backend remains does the client see
// Unavailable.
//
// Drain / rollout: a kDrainRequest sent *to the router* fans out to every
// backend (fleet shutdown); Router::DrainBackend drains one replica for
// zero-downtime rollout — the replica finishes its queue, health flips to
// kDraining, routing avoids it, the operator restarts it with the newly
// published ModelSnapshot, and the probe re-adds it. kHealthRequest to the
// router reports kServing while >= 1 backend is routable; kStatsRequest
// sums the backends' ServeStats.
//
// Threading: one accept thread, one blocking handler thread per client
// connection (a router connection does a round trip per request, so the
// per-connection model is the simple and correct choice at fleet-front
// scale), one health-probe thread. Handlers keep their own backend
// connections, so no lock is held across network I/O.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace ncl::net {

// --- Rendezvous-hash primitives, exposed so tests can pin the routing
// contract (order-independence, minimal disruption) without a live fleet.

/// FNV-1a over arbitrary bytes: route keys and backend addresses.
uint64_t RouteHash(std::string_view data);

/// Rendezvous score of one (key, backend) pair — splitmix64-mixes the key
/// hash with a hash of the backend's *address* (RouteHash of
/// Endpoint::ToString), never its index in the config, so every router
/// agrees on the winner regardless of backend list order.
uint64_t RendezvousScore(uint64_t key_hash, uint64_t backend_hash);

/// The routing key of a request: the tenant id and the query tokens,
/// delimiter-separated so distinct (ontology, tokens) tuples never collide.
/// Keying on the tenant too means one ontology's keyspace spreads over the
/// fleet independently of its neighbours'.
std::string RouteKey(std::string_view ontology,
                     const std::vector<std::string>& tokens);

struct RouterConfig {
  Endpoint listen;
  std::vector<Endpoint> backends;
  int health_interval_ms = 200;
  /// Applied to the probe's and the forwarders' backend connections.
  int connect_timeout_ms = 1000;
  int io_timeout_ms = 10000;
  uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  /// listen(2) backlog.
  int backlog = 64;
};

/// Point-in-time view of one backend.
struct BackendStatus {
  Endpoint endpoint;
  bool healthy = false;
  bool draining = false;
  uint64_t snapshot_version = 0;
  uint64_t routed = 0;    ///< link requests forwarded here
  uint64_t failures = 0;  ///< forward/probe failures observed
};

struct RouterStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t retried = 0;  ///< requests that needed a second (or later) backend
  uint64_t failed = 0;   ///< requests that exhausted every backend
  std::vector<BackendStatus> backends;
};

/// \brief The replica front-end.
class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind + listen + start the accept and health threads. The first health
  /// sweep runs synchronously so a freshly started router routes
  /// immediately instead of failing its first requests.
  Status Start();

  /// Close the listener, wake and join every thread. Idempotent. Backends
  /// are left running (stop them via Drain or their own lifecycle).
  void Stop();

  /// Endpoint actually bound (ephemeral ports resolved); valid after Start.
  const Endpoint& bound_endpoint() const { return bound_endpoint_; }

  RouterStats stats() const;

  /// Send Drain to one backend (rollout) — it leaves rotation via the
  /// kDraining health state. Fails OutOfRange on a bad index.
  Status DrainBackend(size_t index);

  /// Send Drain to every backend (fleet shutdown). Returns the first
  /// failure, but attempts all.
  Status DrainAll();

 private:
  struct Backend {
    Endpoint endpoint;
    /// RouteHash of the endpoint address, precomputed once: the backend's
    /// rendezvous identity, stable across config order and fleet edits.
    uint64_t address_hash = 0;
    std::atomic<bool> healthy{false};
    std::atomic<bool> draining{false};
    std::atomic<uint64_t> snapshot_version{0};
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> failures{0};
    explicit Backend(Endpoint ep)
        : endpoint(std::move(ep)), address_hash(RouteHash(endpoint.ToString())) {}
  };

  void AcceptLoop();
  void HandleConnection(uint64_t handler_id, Fd fd);
  void HealthLoop();
  /// Join handler threads that have finished. Requires handlers_mutex_.
  void ReapFinishedHandlersLocked();
  void ProbeAllBackends();
  /// Mark a forwarding failure: out of rotation until the probe readmits.
  void MarkBackendDown(size_t index);

  /// Backend indexes ordered by rendezvous score for `key`, routable
  /// (healthy && !draining) first. Never empty unless there are no backends.
  std::vector<size_t> RouteOrder(std::string_view key) const;

  /// Forward one decoded link request; returns the response to send (always
  /// a valid LinkResponse — exhaustion becomes an Unavailable envelope).
  LinkResponseMsg ForwardLink(const LinkRequestMsg& request,
                              std::vector<std::unique_ptr<Client>>* backends);

  Client* BackendClient(size_t index,
                        std::vector<std::unique_ptr<Client>>* cache);

  const RouterConfig config_;
  Endpoint bound_endpoint_;
  std::vector<std::unique_ptr<Backend>> backends_;

  Fd listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::mutex stop_mutex_;
  bool stopped_ = false;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> failed_{0};

  std::mutex health_mutex_;
  std::condition_variable health_cv_;  ///< wakes the probe early on Stop

  std::thread accept_thread_;
  std::thread health_thread_;

  /// One live entry per client connection. The fd is kept so Stop can
  /// shutdown(2) it to unblock the handler's read; the handler erases its
  /// own entry on exit (so Stop never touches a recycled fd number) and
  /// parks its thread on finished_handlers_ for joining — a long-running
  /// router holds state only for connections that are still open.
  struct HandlerEntry {
    std::thread thread;
    int fd = -1;
  };
  std::mutex handlers_mutex_;
  std::map<uint64_t, HandlerEntry> handlers_;
  std::vector<std::thread> finished_handlers_;
  uint64_t next_handler_id_ = 0;
};

}  // namespace ncl::net
