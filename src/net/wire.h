// ncl::net wire protocol — length-prefixed, versioned binary framing.
//
// Every message on a connection is one frame:
//
//     offset  size  field
//     ------  ----  -----------------------------------------------
//          0     2  magic 0x4E43 ("NC", little-endian on the wire)
//          2     1  protocol version (kProtocolVersion)
//          3     1  message type (MessageType)
//          4     4  body length in bytes (u32 LE, <= max_body_bytes)
//          8     8  correlation id (u64 LE, echoed verbatim in the reply)
//         16     -  body (per-type layout below)
//
// The correlation id is chosen by the sender of a request and copied into
// the matching response, so clients may pipeline: several requests can be
// in flight on one connection and responses are matched by id, not order
// (the server happens to respond in completion order).
//
// Integers are little-endian fixed-width; doubles travel as their IEEE-754
// bit pattern in a u64. Strings and token lists are u32-length-prefixed.
// Status travels as an *error envelope*: the code's canonical name (see
// StatusCodeToString / StatusCodeFromString — names, not raw enum values,
// so a renumbered enum can never alias across versions) plus the message.
//
// Versioning rules: the header layout is frozen; kProtocolVersion bumps
// whenever any body layout changes. A decoder that sees a version it does
// not speak rejects the frame with InvalidArgument before reading the body
// — there is no cross-version negotiation, replicas and routers are
// deployed from the same build. (v1 → v2: kLinkRequest gained the ontology
// string between deadline_us and the token list.)
//
// Body layouts (request → response):
//
//   kLinkRequest:   u64 deadline_us (0 = none, clamped to kMaxDeadlineUs),
//                   string ontology ("" = default tenant), u32 n,
//                   n × string token
//   kLinkResponse:  envelope, u64 snapshot_version, u64 server_request_id,
//                   6 × f64 timings (queue_wait, batch_form, candgen, ed,
//                   rank, total — serve::RequestTimings), u32 n,
//                   n × { i32 concept_id, f64 log_prob, f64 loss }
//   kHealthRequest: (empty)
//   kHealthResponse: u8 state (ServerState), u64 snapshot_version
//   kDrainRequest:  (empty)
//   kDrainResponse: envelope
//   kStatsRequest:  (empty)
//   kStatsResponse: 8 × u64 (admitted, rejected, shed, deadline_exceeded,
//                   completed, batches, queue_depth, max_queue_depth)
//   kError:         envelope — the response to a frame whose header parsed
//                   but whose body or type did not.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "linking/ncl_linker.h"
#include "serve/linking_service.h"
#include "util/status.h"

namespace ncl::net {

inline constexpr uint16_t kMagic = 0x4E43;
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr size_t kHeaderSize = 16;
/// Default body-size cap; a header announcing more is a decode error (it is
/// a corrupt stream or a hostile peer, not a big request).
inline constexpr uint32_t kDefaultMaxBodyBytes = 16u << 20;
/// Ceiling applied to the wire deadline at decode. The field is an
/// attacker-controlled u64; anything above serve::kMaxRequestDeadline would
/// wrap `enqueued + deadline` in the service into the past (instant
/// DeadlineExceeded at best, signed overflow at worst), so the decoder
/// clamps rather than trusting the peer.
inline constexpr uint64_t kMaxDeadlineUs =
    static_cast<uint64_t>(serve::kMaxRequestDeadline.count());

enum class MessageType : uint8_t {
  kLinkRequest = 1,
  kLinkResponse = 2,
  kHealthRequest = 3,
  kHealthResponse = 4,
  kDrainRequest = 5,
  kDrainResponse = 6,
  kStatsRequest = 7,
  kStatsResponse = 8,
  kError = 9,
};

/// What a replica reports in kHealthResponse.
enum class ServerState : uint8_t {
  kServing = 0,
  kDraining = 1,  ///< drain requested: finish queued work, admit nothing new
};

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  MessageType type = MessageType::kError;
  uint32_t body_size = 0;
  uint64_t correlation_id = 0;
};

struct LinkRequestMsg {
  uint64_t deadline_us = 0;  ///< propagated into serve::RequestOptions
  /// Tenant (ontology id) the request scores against; "" = default tenant.
  /// New in protocol v2. Routers key their rendezvous hash on
  /// (ontology, tokens) so one tenant's keyspace never reshuffles another's.
  std::string ontology;
  std::vector<std::string> tokens;
};

struct LinkResponseMsg {
  Status status;
  uint64_t snapshot_version = 0;
  uint64_t server_request_id = 0;
  serve::RequestTimings timings;
  std::vector<linking::ScoredCandidate> candidates;
};

struct HealthResponseMsg {
  ServerState state = ServerState::kServing;
  uint64_t snapshot_version = 0;
};

struct StatsResponseMsg {
  serve::ServeStats stats;
};

// --- Encoding. Each encoder returns one complete frame (header + body).

std::string EncodeLinkRequest(uint64_t correlation_id, const LinkRequestMsg& msg);
std::string EncodeLinkResponse(uint64_t correlation_id, const LinkResponseMsg& msg);
std::string EncodeHealthRequest(uint64_t correlation_id);
std::string EncodeHealthResponse(uint64_t correlation_id, const HealthResponseMsg& msg);
std::string EncodeDrainRequest(uint64_t correlation_id);
std::string EncodeDrainResponse(uint64_t correlation_id, const Status& status);
std::string EncodeStatsRequest(uint64_t correlation_id);
std::string EncodeStatsResponse(uint64_t correlation_id, const StatsResponseMsg& msg);
std::string EncodeErrorResponse(uint64_t correlation_id, const Status& status);

// --- Decoding.

/// Parse a header from exactly kHeaderSize bytes. Fails InvalidArgument on
/// bad magic or version, or a body size above `max_body_bytes`.
Result<FrameHeader> DecodeHeader(std::string_view bytes,
                                 uint32_t max_body_bytes = kDefaultMaxBodyBytes);

/// Body decoders: `body` is exactly `FrameHeader::body_size` bytes. All are
/// bounds-checked and fail InvalidArgument on truncated or trailing bytes.
Result<LinkRequestMsg> DecodeLinkRequest(std::string_view body);
Result<LinkResponseMsg> DecodeLinkResponse(std::string_view body);
Result<HealthResponseMsg> DecodeHealthResponse(std::string_view body);
Result<StatsResponseMsg> DecodeStatsResponse(std::string_view body);
/// kDrainResponse and kError bodies are a bare error envelope. `*decoded`
/// receives the transported Status; the return value reports malformed
/// bodies (Result<Status> would be ambiguous, hence the out-param).
Status DecodeStatusEnvelope(std::string_view body, Status* decoded);

/// One decoded frame: header plus its raw body (decode with the per-type
/// function matching header.type).
struct Frame {
  FrameHeader header;
  std::string body;
};

/// \brief Incremental frame decoder for a byte stream.
///
/// Feed arbitrary chunks with Append; Next pops complete frames. A framing
/// error (bad magic/version/oversized body) is sticky: Next returns the
/// error forever after, because byte-stream resynchronisation after a bad
/// length prefix is not possible.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// True: `*frame` holds the next complete frame. False with OK status:
  /// need more bytes. False with non-OK status: the stream is corrupt.
  bool Next(Frame* frame, Status* status);

  /// Bytes buffered but not yet consumed by Next.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_body_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  Status error_;
};

}  // namespace ncl::net
