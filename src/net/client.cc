#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace ncl::net {

namespace {

struct ClientMetrics {
  obs::Counter* requests;
  obs::Counter* retries;
  obs::Counter* transport_errors;
};

const ClientMetrics& GetClientMetrics() {
  static const ClientMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return ClientMetrics{registry.GetCounter("ncl.net.client.requests"),
                         registry.GetCounter("ncl.net.client.retries"),
                         registry.GetCounter("ncl.net.client.transport_errors")};
  }();
  return metrics;
}

bool Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const Endpoint& endpoint,
                                                ClientConfig config) {
  std::unique_ptr<Client> client(new Client(endpoint, config));
  std::lock_guard<std::mutex> lock(client->mutex_);
  NCL_RETURN_NOT_OK(client->EnsureConnectedLocked());
  return client;
}

Status Client::EnsureConnectedLocked() {
  if (fd_.valid()) return Status::OK();
  NCL_ASSIGN_OR_RETURN(fd_, net::Connect(endpoint_, config_.connect_timeout_ms));
  return Status::OK();
}

Status Client::SendFrameLocked(const std::string& frame) {
  Status status = SendAll(fd_.get(), frame, config_.send_timeout_ms);
  if (!status.ok()) {
    GetClientMetrics().transport_errors->Increment();
    DisconnectLocked();
  }
  return status;
}

Result<Frame> Client::ReadFrameLocked() {
  std::string header_bytes;
  Status status =
      RecvExactly(fd_.get(), kHeaderSize, &header_bytes, config_.recv_timeout_ms);
  if (!status.ok()) {
    GetClientMetrics().transport_errors->Increment();
    DisconnectLocked();
    return status;
  }
  Result<FrameHeader> header = DecodeHeader(header_bytes, config_.max_body_bytes);
  if (!header.ok()) {
    // A framing error means we lost stream sync: the connection is useless.
    DisconnectLocked();
    return header.status();
  }
  Frame frame;
  frame.header = *header;
  if (header->body_size > 0) {
    status = RecvExactly(fd_.get(), header->body_size, &frame.body,
                         config_.recv_timeout_ms);
    if (!status.ok()) {
      GetClientMetrics().transport_errors->Increment();
      DisconnectLocked();
      return status;
    }
  }
  return frame;
}

Result<Frame> Client::RoundTripLocked(const std::string& frame,
                                      MessageType expected,
                                      uint64_t correlation_id) {
  NCL_RETURN_NOT_OK(EnsureConnectedLocked());
  NCL_RETURN_NOT_OK(SendFrameLocked(frame));
  NCL_ASSIGN_OR_RETURN(Frame reply, ReadFrameLocked());
  if (reply.header.correlation_id != correlation_id) {
    // Only possible after mixing pipelined and sync calls on one client;
    // the stream is out of step with this caller.
    DisconnectLocked();
    return Status::Internal(
        "response correlation id " + std::to_string(reply.header.correlation_id) +
        " does not match request " + std::to_string(correlation_id));
  }
  if (reply.header.type == MessageType::kError) {
    Status enveloped;
    NCL_RETURN_NOT_OK(DecodeStatusEnvelope(reply.body, &enveloped));
    return enveloped;
  }
  if (reply.header.type != expected) {
    DisconnectLocked();
    return Status::Internal("unexpected response type " +
                            std::to_string(static_cast<int>(reply.header.type)));
  }
  return reply;
}

Result<LinkResponseMsg> Client::Link(const std::vector<std::string>& tokens,
                                     uint64_t deadline_us,
                                     const std::string& ontology) {
  GetClientMetrics().requests->Increment();
  LinkRequestMsg request;
  request.ontology = ontology;
  request.tokens = tokens;

  // A non-zero deadline is an end-to-end budget across attempts, not a
  // per-attempt allowance: resending the full deadline every retry would
  // let one call burn (max_retries+1) x deadline of caller wall-clock.
  const auto started = std::chrono::steady_clock::now();
  const auto remaining_us = [&]() -> uint64_t {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - started);
    const uint64_t spent = static_cast<uint64_t>(elapsed.count());
    return spent >= deadline_us ? 0 : deadline_us - spent;
  };

  Status last_error;
  int backoff_ms = config_.initial_backoff_ms;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      GetClientMetrics().retries->Increment();
      // Sleep outside the mutex — a backing-off retry must not stall
      // concurrent users of a shared client — and never longer than the
      // remaining budget.
      uint64_t sleep_us = static_cast<uint64_t>(backoff_ms) * 1000;
      if (deadline_us > 0) sleep_us = std::min(sleep_us, remaining_us());
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
      backoff_ms *= 2;
    }
    request.deadline_us = deadline_us;
    if (deadline_us > 0) {
      request.deadline_us = remaining_us();
      if (request.deadline_us == 0) {
        return Status::DeadlineExceeded(
            "link to " + endpoint_.ToString() + " spent its " +
            std::to_string(deadline_us) + "us budget after " +
            std::to_string(attempt) + " attempt(s)" +
            (last_error.ok() ? "" : ": " + last_error.ToString()));
      }
    }
    Result<Frame> reply = [&] {
      std::lock_guard<std::mutex> lock(mutex_);
      const uint64_t correlation_id = next_correlation_id_++;
      return RoundTripLocked(EncodeLinkRequest(correlation_id, request),
                             MessageType::kLinkResponse, correlation_id);
    }();
    if (!reply.ok()) {
      if (Retryable(reply.status())) {
        last_error = reply.status();
        continue;
      }
      return reply.status();
    }
    Result<LinkResponseMsg> response = DecodeLinkResponse(reply->body);
    if (!response.ok()) return response.status();
    if (Retryable(response->status)) {
      // The service itself said Unavailable (shed / draining / shut down):
      // same treatment as a dead connection.
      last_error = response->status;
      continue;
    }
    return response;
  }
  return Status::Unavailable(
      "link to " + endpoint_.ToString() + " failed after " +
      std::to_string(config_.max_retries + 1) + " attempts: " +
      last_error.ToString());
}

Result<uint64_t> Client::SendLink(const std::vector<std::string>& tokens,
                                  uint64_t deadline_us,
                                  const std::string& ontology) {
  std::lock_guard<std::mutex> lock(mutex_);
  NCL_RETURN_NOT_OK(EnsureConnectedLocked());
  GetClientMetrics().requests->Increment();
  LinkRequestMsg request;
  request.deadline_us = deadline_us;
  request.ontology = ontology;
  request.tokens = tokens;
  const uint64_t correlation_id = next_correlation_id_++;
  NCL_RETURN_NOT_OK(SendFrameLocked(EncodeLinkRequest(correlation_id, request)));
  return correlation_id;
}

Result<LinkResponseMsg> Client::ReceiveLink(uint64_t* correlation_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fd_.valid()) {
    return Status::FailedPrecondition("ReceiveLink on a disconnected client");
  }
  NCL_ASSIGN_OR_RETURN(Frame reply, ReadFrameLocked());
  if (correlation_id != nullptr) *correlation_id = reply.header.correlation_id;
  if (reply.header.type == MessageType::kError) {
    Status enveloped;
    NCL_RETURN_NOT_OK(DecodeStatusEnvelope(reply.body, &enveloped));
    return enveloped;
  }
  if (reply.header.type != MessageType::kLinkResponse) {
    DisconnectLocked();
    return Status::Internal("unexpected response type " +
                            std::to_string(static_cast<int>(reply.header.type)));
  }
  return DecodeLinkResponse(reply.body);
}

Result<HealthResponseMsg> Client::Health() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t correlation_id = next_correlation_id_++;
  NCL_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTripLocked(EncodeHealthRequest(correlation_id),
                      MessageType::kHealthResponse, correlation_id));
  return DecodeHealthResponse(reply.body);
}

Result<StatsResponseMsg> Client::Stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t correlation_id = next_correlation_id_++;
  NCL_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTripLocked(EncodeStatsRequest(correlation_id),
                      MessageType::kStatsResponse, correlation_id));
  return DecodeStatsResponse(reply.body);
}

Status Client::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t correlation_id = next_correlation_id_++;
  Result<Frame> reply =
      RoundTripLocked(EncodeDrainRequest(correlation_id),
                      MessageType::kDrainResponse, correlation_id);
  if (!reply.ok()) return reply.status();
  Status acknowledged;
  NCL_RETURN_NOT_OK(DecodeStatusEnvelope(reply->body, &acknowledged));
  return acknowledged;
}

}  // namespace ncl::net
