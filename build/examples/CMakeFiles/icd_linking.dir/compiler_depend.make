# Empty compiler generated dependencies file for icd_linking.
# This may be replaced when dependencies are built.
