file(REMOVE_RECURSE
  "CMakeFiles/icd_linking.dir/icd_linking.cpp.o"
  "CMakeFiles/icd_linking.dir/icd_linking.cpp.o.d"
  "icd_linking"
  "icd_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icd_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
