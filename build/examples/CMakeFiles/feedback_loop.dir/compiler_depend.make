# Empty compiler generated dependencies file for feedback_loop.
# This may be replaced when dependencies are built.
