file(REMOVE_RECURSE
  "CMakeFiles/ncl_comaid_test.dir/comaid/generator_test.cc.o"
  "CMakeFiles/ncl_comaid_test.dir/comaid/generator_test.cc.o.d"
  "CMakeFiles/ncl_comaid_test.dir/comaid/model_io_test.cc.o"
  "CMakeFiles/ncl_comaid_test.dir/comaid/model_io_test.cc.o.d"
  "CMakeFiles/ncl_comaid_test.dir/comaid/model_test.cc.o"
  "CMakeFiles/ncl_comaid_test.dir/comaid/model_test.cc.o.d"
  "CMakeFiles/ncl_comaid_test.dir/comaid/trainer_test.cc.o"
  "CMakeFiles/ncl_comaid_test.dir/comaid/trainer_test.cc.o.d"
  "ncl_comaid_test"
  "ncl_comaid_test.pdb"
  "ncl_comaid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_comaid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
