# Empty dependencies file for ncl_comaid_test.
# This may be replaced when dependencies are built.
