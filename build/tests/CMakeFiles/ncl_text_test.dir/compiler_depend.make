# Empty compiler generated dependencies file for ncl_text_test.
# This may be replaced when dependencies are built.
