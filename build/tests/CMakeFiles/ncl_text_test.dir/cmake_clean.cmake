file(REMOVE_RECURSE
  "CMakeFiles/ncl_text_test.dir/text/edit_distance_test.cc.o"
  "CMakeFiles/ncl_text_test.dir/text/edit_distance_test.cc.o.d"
  "CMakeFiles/ncl_text_test.dir/text/tfidf_index_test.cc.o"
  "CMakeFiles/ncl_text_test.dir/text/tfidf_index_test.cc.o.d"
  "CMakeFiles/ncl_text_test.dir/text/tokenizer_test.cc.o"
  "CMakeFiles/ncl_text_test.dir/text/tokenizer_test.cc.o.d"
  "CMakeFiles/ncl_text_test.dir/text/vocabulary_test.cc.o"
  "CMakeFiles/ncl_text_test.dir/text/vocabulary_test.cc.o.d"
  "ncl_text_test"
  "ncl_text_test.pdb"
  "ncl_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
