# Empty compiler generated dependencies file for ncl_integration_test.
# This may be replaced when dependencies are built.
