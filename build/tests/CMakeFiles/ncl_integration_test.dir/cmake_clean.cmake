file(REMOVE_RECURSE
  "CMakeFiles/ncl_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/ncl_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/ncl_integration_test.dir/integration/feedback_loop_test.cc.o"
  "CMakeFiles/ncl_integration_test.dir/integration/feedback_loop_test.cc.o.d"
  "ncl_integration_test"
  "ncl_integration_test.pdb"
  "ncl_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
