# Empty dependencies file for ncl_nn_test.
# This may be replaced when dependencies are built.
