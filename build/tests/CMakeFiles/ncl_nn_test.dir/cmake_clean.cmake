file(REMOVE_RECURSE
  "CMakeFiles/ncl_nn_test.dir/nn/lstm_test.cc.o"
  "CMakeFiles/ncl_nn_test.dir/nn/lstm_test.cc.o.d"
  "CMakeFiles/ncl_nn_test.dir/nn/matrix_test.cc.o"
  "CMakeFiles/ncl_nn_test.dir/nn/matrix_test.cc.o.d"
  "CMakeFiles/ncl_nn_test.dir/nn/optimizer_test.cc.o"
  "CMakeFiles/ncl_nn_test.dir/nn/optimizer_test.cc.o.d"
  "CMakeFiles/ncl_nn_test.dir/nn/parameter_test.cc.o"
  "CMakeFiles/ncl_nn_test.dir/nn/parameter_test.cc.o.d"
  "CMakeFiles/ncl_nn_test.dir/nn/tape_test.cc.o"
  "CMakeFiles/ncl_nn_test.dir/nn/tape_test.cc.o.d"
  "ncl_nn_test"
  "ncl_nn_test.pdb"
  "ncl_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
