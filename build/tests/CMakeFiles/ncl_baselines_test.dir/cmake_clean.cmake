file(REMOVE_RECURSE
  "CMakeFiles/ncl_baselines_test.dir/baselines/dictionary_test.cc.o"
  "CMakeFiles/ncl_baselines_test.dir/baselines/dictionary_test.cc.o.d"
  "CMakeFiles/ncl_baselines_test.dir/baselines/doc2vec_test.cc.o"
  "CMakeFiles/ncl_baselines_test.dir/baselines/doc2vec_test.cc.o.d"
  "CMakeFiles/ncl_baselines_test.dir/baselines/lr_test.cc.o"
  "CMakeFiles/ncl_baselines_test.dir/baselines/lr_test.cc.o.d"
  "CMakeFiles/ncl_baselines_test.dir/baselines/pkduck_test.cc.o"
  "CMakeFiles/ncl_baselines_test.dir/baselines/pkduck_test.cc.o.d"
  "CMakeFiles/ncl_baselines_test.dir/baselines/wmd_test.cc.o"
  "CMakeFiles/ncl_baselines_test.dir/baselines/wmd_test.cc.o.d"
  "ncl_baselines_test"
  "ncl_baselines_test.pdb"
  "ncl_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
