# Empty compiler generated dependencies file for ncl_baselines_test.
# This may be replaced when dependencies are built.
