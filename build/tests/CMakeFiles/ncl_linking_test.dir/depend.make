# Empty dependencies file for ncl_linking_test.
# This may be replaced when dependencies are built.
