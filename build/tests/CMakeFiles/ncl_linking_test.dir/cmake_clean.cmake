file(REMOVE_RECURSE
  "CMakeFiles/ncl_linking_test.dir/linking/candidate_generator_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/candidate_generator_test.cc.o.d"
  "CMakeFiles/ncl_linking_test.dir/linking/feedback_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/feedback_test.cc.o.d"
  "CMakeFiles/ncl_linking_test.dir/linking/fusion_linker_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/fusion_linker_test.cc.o.d"
  "CMakeFiles/ncl_linking_test.dir/linking/metrics_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/metrics_test.cc.o.d"
  "CMakeFiles/ncl_linking_test.dir/linking/ncl_linker_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/ncl_linker_test.cc.o.d"
  "CMakeFiles/ncl_linking_test.dir/linking/pca_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/pca_test.cc.o.d"
  "CMakeFiles/ncl_linking_test.dir/linking/query_rewriter_test.cc.o"
  "CMakeFiles/ncl_linking_test.dir/linking/query_rewriter_test.cc.o.d"
  "ncl_linking_test"
  "ncl_linking_test.pdb"
  "ncl_linking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_linking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
