
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datagen/alias_generator_test.cc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/alias_generator_test.cc.o" "gcc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/alias_generator_test.cc.o.d"
  "/root/repo/tests/datagen/dataset_test.cc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/dataset_test.cc.o" "gcc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/dataset_test.cc.o.d"
  "/root/repo/tests/datagen/medical_vocabulary_test.cc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/medical_vocabulary_test.cc.o" "gcc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/medical_vocabulary_test.cc.o.d"
  "/root/repo/tests/datagen/ontology_synthesizer_test.cc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/ontology_synthesizer_test.cc.o" "gcc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/ontology_synthesizer_test.cc.o.d"
  "/root/repo/tests/datagen/query_generator_test.cc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/query_generator_test.cc.o" "gcc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/query_generator_test.cc.o.d"
  "/root/repo/tests/datagen/snippet_io_test.cc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/snippet_io_test.cc.o" "gcc" "tests/CMakeFiles/ncl_datagen_test.dir/datagen/snippet_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linking/CMakeFiles/ncl_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ncl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/comaid/CMakeFiles/ncl_comaid.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ncl_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/pretrain/CMakeFiles/ncl_pretrain.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ncl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ncl_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ncl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
