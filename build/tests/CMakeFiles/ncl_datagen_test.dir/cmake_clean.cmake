file(REMOVE_RECURSE
  "CMakeFiles/ncl_datagen_test.dir/datagen/alias_generator_test.cc.o"
  "CMakeFiles/ncl_datagen_test.dir/datagen/alias_generator_test.cc.o.d"
  "CMakeFiles/ncl_datagen_test.dir/datagen/dataset_test.cc.o"
  "CMakeFiles/ncl_datagen_test.dir/datagen/dataset_test.cc.o.d"
  "CMakeFiles/ncl_datagen_test.dir/datagen/medical_vocabulary_test.cc.o"
  "CMakeFiles/ncl_datagen_test.dir/datagen/medical_vocabulary_test.cc.o.d"
  "CMakeFiles/ncl_datagen_test.dir/datagen/ontology_synthesizer_test.cc.o"
  "CMakeFiles/ncl_datagen_test.dir/datagen/ontology_synthesizer_test.cc.o.d"
  "CMakeFiles/ncl_datagen_test.dir/datagen/query_generator_test.cc.o"
  "CMakeFiles/ncl_datagen_test.dir/datagen/query_generator_test.cc.o.d"
  "CMakeFiles/ncl_datagen_test.dir/datagen/snippet_io_test.cc.o"
  "CMakeFiles/ncl_datagen_test.dir/datagen/snippet_io_test.cc.o.d"
  "ncl_datagen_test"
  "ncl_datagen_test.pdb"
  "ncl_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
