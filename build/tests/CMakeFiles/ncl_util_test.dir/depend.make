# Empty dependencies file for ncl_util_test.
# This may be replaced when dependencies are built.
