file(REMOVE_RECURSE
  "CMakeFiles/ncl_util_test.dir/util/random_test.cc.o"
  "CMakeFiles/ncl_util_test.dir/util/random_test.cc.o.d"
  "CMakeFiles/ncl_util_test.dir/util/status_test.cc.o"
  "CMakeFiles/ncl_util_test.dir/util/status_test.cc.o.d"
  "CMakeFiles/ncl_util_test.dir/util/string_util_test.cc.o"
  "CMakeFiles/ncl_util_test.dir/util/string_util_test.cc.o.d"
  "CMakeFiles/ncl_util_test.dir/util/table_writer_test.cc.o"
  "CMakeFiles/ncl_util_test.dir/util/table_writer_test.cc.o.d"
  "CMakeFiles/ncl_util_test.dir/util/thread_pool_test.cc.o"
  "CMakeFiles/ncl_util_test.dir/util/thread_pool_test.cc.o.d"
  "ncl_util_test"
  "ncl_util_test.pdb"
  "ncl_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
