file(REMOVE_RECURSE
  "CMakeFiles/ncl_pretrain_test.dir/pretrain/cbow_test.cc.o"
  "CMakeFiles/ncl_pretrain_test.dir/pretrain/cbow_test.cc.o.d"
  "CMakeFiles/ncl_pretrain_test.dir/pretrain/concept_injection_test.cc.o"
  "CMakeFiles/ncl_pretrain_test.dir/pretrain/concept_injection_test.cc.o.d"
  "CMakeFiles/ncl_pretrain_test.dir/pretrain/embeddings_test.cc.o"
  "CMakeFiles/ncl_pretrain_test.dir/pretrain/embeddings_test.cc.o.d"
  "ncl_pretrain_test"
  "ncl_pretrain_test.pdb"
  "ncl_pretrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_pretrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
