file(REMOVE_RECURSE
  "CMakeFiles/ncl_ontology_test.dir/ontology/ontology_io_test.cc.o"
  "CMakeFiles/ncl_ontology_test.dir/ontology/ontology_io_test.cc.o.d"
  "CMakeFiles/ncl_ontology_test.dir/ontology/ontology_test.cc.o"
  "CMakeFiles/ncl_ontology_test.dir/ontology/ontology_test.cc.o.d"
  "ncl_ontology_test"
  "ncl_ontology_test.pdb"
  "ncl_ontology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_ontology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
