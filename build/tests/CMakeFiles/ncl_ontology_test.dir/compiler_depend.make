# Empty compiler generated dependencies file for ncl_ontology_test.
# This may be replaced when dependencies are built.
