# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ncl_util_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_text_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_ontology_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_nn_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_pretrain_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_datagen_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_comaid_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_linking_test[1]_include.cmake")
include("/root/repo/build/tests/ncl_integration_test[1]_include.cmake")
