file(REMOVE_RECURSE
  "libncl_pretrain.a"
)
