file(REMOVE_RECURSE
  "CMakeFiles/ncl_pretrain.dir/cbow.cc.o"
  "CMakeFiles/ncl_pretrain.dir/cbow.cc.o.d"
  "CMakeFiles/ncl_pretrain.dir/concept_injection.cc.o"
  "CMakeFiles/ncl_pretrain.dir/concept_injection.cc.o.d"
  "CMakeFiles/ncl_pretrain.dir/embeddings.cc.o"
  "CMakeFiles/ncl_pretrain.dir/embeddings.cc.o.d"
  "libncl_pretrain.a"
  "libncl_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
