# Empty compiler generated dependencies file for ncl_pretrain.
# This may be replaced when dependencies are built.
