
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pretrain/cbow.cc" "src/pretrain/CMakeFiles/ncl_pretrain.dir/cbow.cc.o" "gcc" "src/pretrain/CMakeFiles/ncl_pretrain.dir/cbow.cc.o.d"
  "/root/repo/src/pretrain/concept_injection.cc" "src/pretrain/CMakeFiles/ncl_pretrain.dir/concept_injection.cc.o" "gcc" "src/pretrain/CMakeFiles/ncl_pretrain.dir/concept_injection.cc.o.d"
  "/root/repo/src/pretrain/embeddings.cc" "src/pretrain/CMakeFiles/ncl_pretrain.dir/embeddings.cc.o" "gcc" "src/pretrain/CMakeFiles/ncl_pretrain.dir/embeddings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ncl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ncl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
