
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linking/candidate_generator.cc" "src/linking/CMakeFiles/ncl_linking.dir/candidate_generator.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/candidate_generator.cc.o.d"
  "/root/repo/src/linking/feedback.cc" "src/linking/CMakeFiles/ncl_linking.dir/feedback.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/feedback.cc.o.d"
  "/root/repo/src/linking/fusion_linker.cc" "src/linking/CMakeFiles/ncl_linking.dir/fusion_linker.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/fusion_linker.cc.o.d"
  "/root/repo/src/linking/metrics.cc" "src/linking/CMakeFiles/ncl_linking.dir/metrics.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/metrics.cc.o.d"
  "/root/repo/src/linking/ncl_linker.cc" "src/linking/CMakeFiles/ncl_linking.dir/ncl_linker.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/ncl_linker.cc.o.d"
  "/root/repo/src/linking/pca.cc" "src/linking/CMakeFiles/ncl_linking.dir/pca.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/pca.cc.o.d"
  "/root/repo/src/linking/query_rewriter.cc" "src/linking/CMakeFiles/ncl_linking.dir/query_rewriter.cc.o" "gcc" "src/linking/CMakeFiles/ncl_linking.dir/query_rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comaid/CMakeFiles/ncl_comaid.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/ncl_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/pretrain/CMakeFiles/ncl_pretrain.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ncl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ncl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
