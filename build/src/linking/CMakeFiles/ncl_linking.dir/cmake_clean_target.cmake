file(REMOVE_RECURSE
  "libncl_linking.a"
)
