file(REMOVE_RECURSE
  "CMakeFiles/ncl_linking.dir/candidate_generator.cc.o"
  "CMakeFiles/ncl_linking.dir/candidate_generator.cc.o.d"
  "CMakeFiles/ncl_linking.dir/feedback.cc.o"
  "CMakeFiles/ncl_linking.dir/feedback.cc.o.d"
  "CMakeFiles/ncl_linking.dir/fusion_linker.cc.o"
  "CMakeFiles/ncl_linking.dir/fusion_linker.cc.o.d"
  "CMakeFiles/ncl_linking.dir/metrics.cc.o"
  "CMakeFiles/ncl_linking.dir/metrics.cc.o.d"
  "CMakeFiles/ncl_linking.dir/ncl_linker.cc.o"
  "CMakeFiles/ncl_linking.dir/ncl_linker.cc.o.d"
  "CMakeFiles/ncl_linking.dir/pca.cc.o"
  "CMakeFiles/ncl_linking.dir/pca.cc.o.d"
  "CMakeFiles/ncl_linking.dir/query_rewriter.cc.o"
  "CMakeFiles/ncl_linking.dir/query_rewriter.cc.o.d"
  "libncl_linking.a"
  "libncl_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
