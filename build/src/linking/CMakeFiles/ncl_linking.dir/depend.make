# Empty dependencies file for ncl_linking.
# This may be replaced when dependencies are built.
