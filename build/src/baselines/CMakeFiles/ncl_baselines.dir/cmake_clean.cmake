file(REMOVE_RECURSE
  "CMakeFiles/ncl_baselines.dir/dictionary_linker.cc.o"
  "CMakeFiles/ncl_baselines.dir/dictionary_linker.cc.o.d"
  "CMakeFiles/ncl_baselines.dir/doc2vec.cc.o"
  "CMakeFiles/ncl_baselines.dir/doc2vec.cc.o.d"
  "CMakeFiles/ncl_baselines.dir/lr_linker.cc.o"
  "CMakeFiles/ncl_baselines.dir/lr_linker.cc.o.d"
  "CMakeFiles/ncl_baselines.dir/pkduck_linker.cc.o"
  "CMakeFiles/ncl_baselines.dir/pkduck_linker.cc.o.d"
  "CMakeFiles/ncl_baselines.dir/wmd.cc.o"
  "CMakeFiles/ncl_baselines.dir/wmd.cc.o.d"
  "libncl_baselines.a"
  "libncl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
