# Empty dependencies file for ncl_baselines.
# This may be replaced when dependencies are built.
