file(REMOVE_RECURSE
  "libncl_baselines.a"
)
