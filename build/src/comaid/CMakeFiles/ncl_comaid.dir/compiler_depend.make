# Empty compiler generated dependencies file for ncl_comaid.
# This may be replaced when dependencies are built.
