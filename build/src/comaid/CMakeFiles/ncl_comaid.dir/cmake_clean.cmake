file(REMOVE_RECURSE
  "CMakeFiles/ncl_comaid.dir/generator.cc.o"
  "CMakeFiles/ncl_comaid.dir/generator.cc.o.d"
  "CMakeFiles/ncl_comaid.dir/model.cc.o"
  "CMakeFiles/ncl_comaid.dir/model.cc.o.d"
  "CMakeFiles/ncl_comaid.dir/model_io.cc.o"
  "CMakeFiles/ncl_comaid.dir/model_io.cc.o.d"
  "CMakeFiles/ncl_comaid.dir/trainer.cc.o"
  "CMakeFiles/ncl_comaid.dir/trainer.cc.o.d"
  "libncl_comaid.a"
  "libncl_comaid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_comaid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
