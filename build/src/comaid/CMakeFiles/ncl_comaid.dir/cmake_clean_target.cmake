file(REMOVE_RECURSE
  "libncl_comaid.a"
)
