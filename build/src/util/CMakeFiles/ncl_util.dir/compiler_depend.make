# Empty compiler generated dependencies file for ncl_util.
# This may be replaced when dependencies are built.
