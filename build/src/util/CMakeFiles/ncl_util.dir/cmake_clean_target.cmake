file(REMOVE_RECURSE
  "libncl_util.a"
)
