file(REMOVE_RECURSE
  "CMakeFiles/ncl_util.dir/logging.cc.o"
  "CMakeFiles/ncl_util.dir/logging.cc.o.d"
  "CMakeFiles/ncl_util.dir/random.cc.o"
  "CMakeFiles/ncl_util.dir/random.cc.o.d"
  "CMakeFiles/ncl_util.dir/status.cc.o"
  "CMakeFiles/ncl_util.dir/status.cc.o.d"
  "CMakeFiles/ncl_util.dir/string_util.cc.o"
  "CMakeFiles/ncl_util.dir/string_util.cc.o.d"
  "CMakeFiles/ncl_util.dir/table_writer.cc.o"
  "CMakeFiles/ncl_util.dir/table_writer.cc.o.d"
  "CMakeFiles/ncl_util.dir/thread_pool.cc.o"
  "CMakeFiles/ncl_util.dir/thread_pool.cc.o.d"
  "libncl_util.a"
  "libncl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
