# Empty compiler generated dependencies file for ncl_ontology.
# This may be replaced when dependencies are built.
