file(REMOVE_RECURSE
  "CMakeFiles/ncl_ontology.dir/ontology.cc.o"
  "CMakeFiles/ncl_ontology.dir/ontology.cc.o.d"
  "CMakeFiles/ncl_ontology.dir/ontology_io.cc.o"
  "CMakeFiles/ncl_ontology.dir/ontology_io.cc.o.d"
  "libncl_ontology.a"
  "libncl_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
