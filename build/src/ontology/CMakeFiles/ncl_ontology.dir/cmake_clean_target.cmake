file(REMOVE_RECURSE
  "libncl_ontology.a"
)
