file(REMOVE_RECURSE
  "libncl_nn.a"
)
