file(REMOVE_RECURSE
  "CMakeFiles/ncl_nn.dir/lstm.cc.o"
  "CMakeFiles/ncl_nn.dir/lstm.cc.o.d"
  "CMakeFiles/ncl_nn.dir/matrix.cc.o"
  "CMakeFiles/ncl_nn.dir/matrix.cc.o.d"
  "CMakeFiles/ncl_nn.dir/optimizer.cc.o"
  "CMakeFiles/ncl_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/ncl_nn.dir/parameter.cc.o"
  "CMakeFiles/ncl_nn.dir/parameter.cc.o.d"
  "CMakeFiles/ncl_nn.dir/tape.cc.o"
  "CMakeFiles/ncl_nn.dir/tape.cc.o.d"
  "libncl_nn.a"
  "libncl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
