# Empty dependencies file for ncl_nn.
# This may be replaced when dependencies are built.
