file(REMOVE_RECURSE
  "CMakeFiles/ncl_datagen.dir/alias_generator.cc.o"
  "CMakeFiles/ncl_datagen.dir/alias_generator.cc.o.d"
  "CMakeFiles/ncl_datagen.dir/dataset.cc.o"
  "CMakeFiles/ncl_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/ncl_datagen.dir/medical_vocabulary.cc.o"
  "CMakeFiles/ncl_datagen.dir/medical_vocabulary.cc.o.d"
  "CMakeFiles/ncl_datagen.dir/ontology_synthesizer.cc.o"
  "CMakeFiles/ncl_datagen.dir/ontology_synthesizer.cc.o.d"
  "CMakeFiles/ncl_datagen.dir/query_generator.cc.o"
  "CMakeFiles/ncl_datagen.dir/query_generator.cc.o.d"
  "CMakeFiles/ncl_datagen.dir/snippet_io.cc.o"
  "CMakeFiles/ncl_datagen.dir/snippet_io.cc.o.d"
  "libncl_datagen.a"
  "libncl_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
