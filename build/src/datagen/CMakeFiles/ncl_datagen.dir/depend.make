# Empty dependencies file for ncl_datagen.
# This may be replaced when dependencies are built.
