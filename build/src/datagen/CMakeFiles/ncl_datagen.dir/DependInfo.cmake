
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/alias_generator.cc" "src/datagen/CMakeFiles/ncl_datagen.dir/alias_generator.cc.o" "gcc" "src/datagen/CMakeFiles/ncl_datagen.dir/alias_generator.cc.o.d"
  "/root/repo/src/datagen/dataset.cc" "src/datagen/CMakeFiles/ncl_datagen.dir/dataset.cc.o" "gcc" "src/datagen/CMakeFiles/ncl_datagen.dir/dataset.cc.o.d"
  "/root/repo/src/datagen/medical_vocabulary.cc" "src/datagen/CMakeFiles/ncl_datagen.dir/medical_vocabulary.cc.o" "gcc" "src/datagen/CMakeFiles/ncl_datagen.dir/medical_vocabulary.cc.o.d"
  "/root/repo/src/datagen/ontology_synthesizer.cc" "src/datagen/CMakeFiles/ncl_datagen.dir/ontology_synthesizer.cc.o" "gcc" "src/datagen/CMakeFiles/ncl_datagen.dir/ontology_synthesizer.cc.o.d"
  "/root/repo/src/datagen/query_generator.cc" "src/datagen/CMakeFiles/ncl_datagen.dir/query_generator.cc.o" "gcc" "src/datagen/CMakeFiles/ncl_datagen.dir/query_generator.cc.o.d"
  "/root/repo/src/datagen/snippet_io.cc" "src/datagen/CMakeFiles/ncl_datagen.dir/snippet_io.cc.o" "gcc" "src/datagen/CMakeFiles/ncl_datagen.dir/snippet_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ontology/CMakeFiles/ncl_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ncl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
