file(REMOVE_RECURSE
  "libncl_datagen.a"
)
