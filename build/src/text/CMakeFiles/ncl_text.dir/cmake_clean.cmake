file(REMOVE_RECURSE
  "CMakeFiles/ncl_text.dir/edit_distance.cc.o"
  "CMakeFiles/ncl_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/ncl_text.dir/tfidf_index.cc.o"
  "CMakeFiles/ncl_text.dir/tfidf_index.cc.o.d"
  "CMakeFiles/ncl_text.dir/tokenizer.cc.o"
  "CMakeFiles/ncl_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/ncl_text.dir/vocabulary.cc.o"
  "CMakeFiles/ncl_text.dir/vocabulary.cc.o.d"
  "libncl_text.a"
  "libncl_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
