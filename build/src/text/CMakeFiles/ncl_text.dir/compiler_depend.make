# Empty compiler generated dependencies file for ncl_text.
# This may be replaced when dependencies are built.
