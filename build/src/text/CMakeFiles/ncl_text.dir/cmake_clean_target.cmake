file(REMOVE_RECURSE
  "libncl_text.a"
)
