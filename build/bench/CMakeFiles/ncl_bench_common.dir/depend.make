# Empty dependencies file for ncl_bench_common.
# This may be replaced when dependencies are built.
