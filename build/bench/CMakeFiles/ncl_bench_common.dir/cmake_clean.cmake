file(REMOVE_RECURSE
  "CMakeFiles/ncl_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ncl_bench_common.dir/bench_common.cc.o.d"
  "libncl_bench_common.a"
  "libncl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
