file(REMOVE_RECURSE
  "libncl_bench_common.a"
)
