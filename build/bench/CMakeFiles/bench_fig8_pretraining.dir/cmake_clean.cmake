file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_pretraining.dir/bench_fig8_pretraining.cc.o"
  "CMakeFiles/bench_fig8_pretraining.dir/bench_fig8_pretraining.cc.o.d"
  "bench_fig8_pretraining"
  "bench_fig8_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
