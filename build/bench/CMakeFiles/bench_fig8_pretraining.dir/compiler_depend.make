# Empty compiler generated dependencies file for bench_fig8_pretraining.
# This may be replaced when dependencies are built.
