file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_robustness.dir/bench_fig13_robustness.cc.o"
  "CMakeFiles/bench_fig13_robustness.dir/bench_fig13_robustness.cc.o.d"
  "bench_fig13_robustness"
  "bench_fig13_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
