# Empty compiler generated dependencies file for bench_fig13_robustness.
# This may be replaced when dependencies are built.
