# Empty dependencies file for bench_fig6_architecture.
# This may be replaced when dependencies are built.
