file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_architecture.dir/bench_fig6_architecture.cc.o"
  "CMakeFiles/bench_fig6_architecture.dir/bench_fig6_architecture.cc.o.d"
  "bench_fig6_architecture"
  "bench_fig6_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
