# Empty dependencies file for bench_fig11_online_time.
# This may be replaced when dependencies are built.
