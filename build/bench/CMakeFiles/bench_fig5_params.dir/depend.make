# Empty dependencies file for bench_fig5_params.
# This may be replaced when dependencies are built.
