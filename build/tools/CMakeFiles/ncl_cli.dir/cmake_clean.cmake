file(REMOVE_RECURSE
  "CMakeFiles/ncl_cli.dir/ncl_cli.cc.o"
  "CMakeFiles/ncl_cli.dir/ncl_cli.cc.o.d"
  "ncl"
  "ncl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
