# Empty compiler generated dependencies file for ncl_cli.
# This may be replaced when dependencies are built.
