# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_setup "/usr/bin/cmake" "-E" "make_directory" "/root/repo/build/tools/cli_smoke_ws")
set_tests_properties(cli_smoke_setup PROPERTIES  FIXTURES_SETUP "cli_ws" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_synth "/root/repo/build/tools/ncl" "synth" "/root/repo/build/tools/cli_smoke_ws" "--scale" "0.3" "--seed" "7")
set_tests_properties(cli_smoke_synth PROPERTIES  FIXTURES_REQUIRED "cli_ws" FIXTURES_SETUP "cli_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_train "/root/repo/build/tools/ncl" "train" "/root/repo/build/tools/cli_smoke_ws" "--dim" "16" "--epochs" "3" "--cbow-epochs" "3")
set_tests_properties(cli_smoke_train PROPERTIES  FIXTURES_REQUIRED "cli_data" FIXTURES_SETUP "cli_model" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_link "/root/repo/build/tools/ncl" "link" "/root/repo/build/tools/cli_smoke_ws" "iron def anemia")
set_tests_properties(cli_smoke_link PROPERTIES  FIXTURES_REQUIRED "cli_model" PASS_REGULAR_EXPRESSION "log p" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_eval "/root/repo/build/tools/ncl" "eval" "/root/repo/build/tools/cli_smoke_ws")
set_tests_properties(cli_smoke_eval PROPERTIES  FIXTURES_REQUIRED "cli_model" PASS_REGULAR_EXPRESSION "accuracy=" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
